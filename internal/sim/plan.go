package sim

import (
	"fmt"
	"math"
)

// PlanResult answers a min-workers planner query.
type PlanResult struct {
	TargetCover int   `json:"target_cover"`
	DeadlineNs  int64 `json:"deadline_ns"`
	// ExecsNeeded is the exec budget the yield curve demands for the
	// target (0 when the target is unreachable).
	ExecsNeeded int `json:"execs_needed"`
	// Feasible reports whether some worker count ≤ the searched
	// maximum meets the deadline; Workers is the smallest such count.
	Feasible bool `json:"feasible"`
	Workers  int  `json:"workers,omitempty"`
	// Result is the simulated outcome at the chosen worker count.
	Result *Result `json:"result,omitempty"`
}

// MinWorkers finds the smallest worker count that reaches targetCover
// blocks within deadlineNs, scanning 1..maxWorkers. The exec budget
// is derived from the yield curve's inverse (with a small margin for
// rounding); base supplies the remaining fleet shape (grain, hub,
// checkpointing). Returns an infeasible PlanResult when the target
// exceeds the fitted asymptote or no searched fleet makes the
// deadline.
func MinWorkers(m *Model, base FleetConfig, targetCover int, deadlineNs int64, maxWorkers int) (PlanResult, error) {
	if err := m.Validate(); err != nil {
		return PlanResult{}, err
	}
	if targetCover <= 0 || deadlineNs <= 0 || maxWorkers <= 0 {
		return PlanResult{}, fmt.Errorf("sim: min-workers query needs positive target (%d), deadline (%d), and max workers (%d)",
			targetCover, deadlineNs, maxWorkers)
	}
	out := PlanResult{TargetCover: targetCover, DeadlineNs: deadlineNs}
	need := m.Yield.Execs(float64(targetCover))
	if math.IsInf(need, 1) {
		return out, nil // beyond the curve's asymptote: no budget reaches it
	}
	// Margin absorbs the round-trip through integer execs and the
	// curve's flatness near the target.
	execs := int(math.Ceil(need * 1.01))
	if execs < 1 {
		execs = 1
	}
	out.ExecsNeeded = execs
	for w := 1; w <= maxWorkers; w++ {
		cfg := base
		cfg.Workers = w
		cfg.Execs = execs
		cfg.DeadlineNs = 0
		r, err := Simulate(m, cfg)
		if err != nil {
			return PlanResult{}, err
		}
		if r.WallNs <= deadlineNs && r.Cover >= targetCover {
			out.Feasible = true
			out.Workers = w
			out.Result = &r
			return out, nil
		}
	}
	return out, nil
}

// Sweep simulates every configuration and returns the results in
// input order. Errors abort the sweep (a bad config list is a caller
// bug, not a partial answer).
func Sweep(m *Model, cfgs []FleetConfig) ([]Result, error) {
	out := make([]Result, 0, len(cfgs))
	for i, cfg := range cfgs {
		r, err := Simulate(m, cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep config %d: %w", i, err)
		}
		out = append(out, r)
	}
	return out, nil
}
