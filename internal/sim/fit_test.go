package sim

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// syntheticTrace samples a known yield curve, so fits can be scored
// against ground truth.
func syntheticTrace(truth YieldModel, step, n int) []TracePoint {
	var pts []TracePoint
	for i := 1; i <= n; i++ {
		e := i * step
		pts = append(pts, TracePoint{
			ElapsedNs: int64(e) * 1000,
			Execs:     e,
			Cover:     int(math.Round(truth.Cover(float64(e)))),
		})
	}
	return pts
}

func TestFitYieldRecoversCurve(t *testing.T) {
	truth := YieldModel{Cmax: 1200, K: 3000, B: 0.8}
	pts := syntheticTrace(truth, 500, 40)
	got, err := FitYield(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Parameters need not match exactly (the surface has shallow
	// valleys), but predictions across the observed range and beyond
	// must track the generator closely.
	for _, e := range []float64{500, 2000, 8000, 20000, 40000} {
		want, have := truth.Cover(e), got.Cover(e)
		if rel := math.Abs(have-want) / want; rel > 0.03 {
			t.Fatalf("fit off at %v execs: want cover %.1f, got %.1f (%.1f%%)", e, want, have, 100*rel)
		}
	}
}

func TestFitYieldDeterministic(t *testing.T) {
	pts := syntheticTrace(YieldModel{Cmax: 900, K: 1500, B: 1.2}, 400, 25)
	a, err := FitYield(pts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitYield(pts)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same trace fitted differently: %+v vs %+v", a, b)
	}
}

func TestFitYieldMonotone(t *testing.T) {
	y, err := FitYield(syntheticTrace(YieldModel{Cmax: 700, K: 800, B: 0.6}, 300, 30))
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for e := 0; e <= 50000; e += 250 {
		c := y.Cover(float64(e))
		if c < prev {
			t.Fatalf("fitted curve not monotone at %d execs: %v < %v", e, c, prev)
		}
		if c > y.Cmax {
			t.Fatalf("fitted curve exceeds its own asymptote at %d execs: %v > %v", e, c, y.Cmax)
		}
		prev = c
	}
	// The analytic inverse must invert the forward map.
	for _, e := range []float64{100, 1000, 10000} {
		if back := y.Execs(y.Cover(e)); math.Abs(back-e)/e > 1e-6 {
			t.Fatalf("Execs(Cover(%v)) = %v", e, back)
		}
	}
	if !math.IsInf(y.Execs(y.Cmax+1), 1) {
		t.Fatal("cover beyond the asymptote must need infinite execs")
	}
}

func TestModelRoundTrip(t *testing.T) {
	pts := syntheticTrace(YieldModel{Cmax: 1100, K: 2200, B: 0.9}, 500, 20)
	yield, err := FitYield(pts)
	if err != nil {
		t.Fatal(err)
	}
	m := &Model{
		Cost: CostModel{
			ExecNs: 12090, MutateNs: 93411, TriageNs: 22504,
			CheckpointNs: 1e6, SyncBaseNs: 2e6, SyncPerSeedNs: 1e4,
			HubServiceNs: 5e5, LLMGenNs: 3e6,
		},
		Yield:          yield,
		SeedsPerSync:   17.5,
		CrashesPerExec: 2.5e-4,
		FittedFrom:     "test",
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *m {
		t.Fatalf("model did not round-trip:\nsaved  %+v\nloaded %+v", m, got)
	}
}

func TestFitCostsFromGateFile(t *testing.T) {
	// The checked-in gate baseline is a valid fit input directly.
	medians, err := LoadBenchMedians(filepath.Join("..", "..", "BENCH_fuzz.json"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := FitCosts(medians)
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecNs <= 0 || c.MutateNs <= 0 || c.TriageNs <= 0 {
		t.Fatalf("gate medians produced degenerate costs: %+v", c)
	}
	// Triage is the campaign-vs-NoTriage gap per exec; with the
	// current baseline it is a minority share of the total.
	if c.TriageNs >= c.ExecNs+c.MutateNs {
		t.Fatalf("triage cost dominates the exec path: %+v", c)
	}
}

func TestFitCostsPrefersCompiledExec(t *testing.T) {
	medians := map[string]float64{
		benchCampaign:         50_000_000,
		benchCampaignNoTriage: 40_000_000,
		benchVMRun:            6000,
	}
	interp, err := FitCosts(medians)
	if err != nil {
		t.Fatal(err)
	}
	if interp.ExecNs != 6000 {
		t.Fatalf("without a compiled median ExecNs must fall back to VMRun: %+v", interp)
	}
	medians[benchVMRunCompiled] = 400
	compiled, err := FitCosts(medians)
	if err != nil {
		t.Fatal(err)
	}
	if compiled.ExecNs != 400 {
		t.Fatalf("compiled median not preferred for ExecNs: %+v", compiled)
	}
	// The split moves between ExecNs and MutateNs; their sum — the
	// per-exec busy time outside triage — is invariant.
	if got, want := compiled.ExecNs+compiled.MutateNs, interp.ExecNs+interp.MutateNs; got != want {
		t.Fatalf("ExecNs+MutateNs changed with the compiled median: %v vs %v", got, want)
	}
	if compiled.TriageNs != interp.TriageNs {
		t.Fatalf("TriageNs depends on the exec benchmark: %+v vs %+v", compiled, interp)
	}
}

func TestFitYieldRejectsThinTraces(t *testing.T) {
	_, err := FitYield([]TracePoint{{Execs: 10, Cover: 5}})
	if err == nil || !strings.Contains(err.Error(), "at least 3") {
		t.Fatalf("thin trace fitted anyway: %v", err)
	}
}

func TestCalibrateOverridesCosts(t *testing.T) {
	m := &Model{
		Cost:  CostModel{ExecNs: 100, MutateNs: 100, TriageNs: 50},
		Yield: YieldModel{Cmax: 100, K: 100, B: 1},
	}
	m.Calibrate(RunRecord{
		Execs: 1000, Cover: 90, Crashes: 2,
		WorkNs: 400_000, TriageNs: 100_000,
		SyncNs: 30_000, Syncs: 10,
		HubServiceNsMean: 1200, SeedsPerSync: 4,
	})
	if got := m.Cost.TriageNs; got != 100 {
		t.Fatalf("triage not recalibrated: %v", got)
	}
	// Core 300ns/exec split by the 1:1 prior.
	if m.Cost.ExecNs != 150 || m.Cost.MutateNs != 150 {
		t.Fatalf("core split wrong: %+v", m.Cost)
	}
	// Sync round-trip 3000ns minus 1200ns hub service = client base.
	if m.Cost.HubServiceNs != 1200 || m.Cost.SyncBaseNs != 1800 {
		t.Fatalf("sync decomposition wrong: %+v", m.Cost)
	}
	if m.SeedsPerSync != 4 || m.CrashesPerExec != 0.002 {
		t.Fatalf("payload/crash rates wrong: %+v", m)
	}
}

func TestFitHubServiceDecomposition(t *testing.T) {
	// Exact line service = 500 + 2·bytes through two worker samples.
	base, perByte, ok := fitHubService([]SyncSample{
		{Count: 10, MeanBytes: 100, MeanServiceNs: 700},
		{Count: 10, MeanBytes: 400, MeanServiceNs: 1300},
	})
	if !ok || math.Abs(base-500) > 1e-9 || math.Abs(perByte-2) > 1e-9 {
		t.Fatalf("exact fit wrong: base=%v perByte=%v ok=%v", base, perByte, ok)
	}

	// One payload size: no leverage, caller must fall back to the mean.
	if _, _, ok := fitHubService([]SyncSample{
		{Count: 5, MeanBytes: 200, MeanServiceNs: 900},
		{Count: 5, MeanBytes: 200, MeanServiceNs: 1100},
	}); ok {
		t.Fatal("fit claimed leverage from a single payload size")
	}

	// Negative slope (noise) clamps to the flat-mean model.
	base, perByte, ok = fitHubService([]SyncSample{
		{Count: 10, MeanBytes: 100, MeanServiceNs: 1300},
		{Count: 10, MeanBytes: 400, MeanServiceNs: 700},
	})
	if !ok || perByte != 0 || base != 1000 {
		t.Fatalf("negative slope not clamped: base=%v perByte=%v ok=%v", base, perByte, ok)
	}
}

func TestCalibratePerByteDecomposition(t *testing.T) {
	m := &Model{
		Cost:  CostModel{ExecNs: 100, MutateNs: 100},
		Yield: YieldModel{Cmax: 100, K: 100, B: 1},
	}
	m.Calibrate(RunRecord{
		Execs:  1000,
		SyncNs: 30_000, Syncs: 10,
		HubServiceNsMean: 1000, // ignored: worker samples take precedence
		BytesPerSync:     250,
		WorkerSyncs: []SyncSample{
			{Count: 10, MeanBytes: 100, MeanServiceNs: 700},
			{Count: 10, MeanBytes: 400, MeanServiceNs: 1300},
		},
	})
	if math.Abs(m.Cost.HubServiceNs-500) > 1e-9 || math.Abs(m.Cost.HubPerByteNs-2) > 1e-9 {
		t.Fatalf("per-byte decomposition wrong: %+v", m.Cost)
	}
	if m.BytesPerSync != 250 {
		t.Fatalf("BytesPerSync not calibrated: %v", m.BytesPerSync)
	}
	// Round-trip 3000ns minus effective hub service 500+2·250=1000ns.
	if math.Abs(m.Cost.SyncBaseNs-2000) > 1e-9 {
		t.Fatalf("client base residual wrong: %v", m.Cost.SyncBaseNs)
	}
}
