package sim

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
)

// CampaignBenchExecs is the per-op execution budget of the
// BenchmarkCampaign* benchmarks in internal/fuzz — the divisor that
// turns their ns/op medians into per-exec coefficients.
const CampaignBenchExecs = 500

// Benchmark keys FitCosts reads from the medians file.
const (
	benchCampaign         = "kernelgpt/internal/fuzz.BenchmarkCampaign"
	benchCampaignNoTriage = "kernelgpt/internal/fuzz.BenchmarkCampaignNoTriage"
	benchVMRun            = "kernelgpt/internal/vkernel.BenchmarkVMRun"
	benchVMRunCompiled    = "kernelgpt/internal/vkernel.BenchmarkVMRunCompiled"
)

// LoadBenchMedians reads per-benchmark ns/op medians from JSON. Both
// the flat export schema (`benchgate -json` / `benchtables -json`:
// {"benchmarks": {key: {"ns_per_op": N}}}) and the full gate file
// (BENCH_fuzz.json: {"gate": {"benchmarks": ...}}) are accepted, so
// the checked-in baseline is directly usable as a fit input.
func LoadBenchMedians(path string) (map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		Benchmarks map[string]struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"benchmarks"`
		Gate struct {
			Benchmarks map[string]struct {
				NsPerOp float64 `json:"ns_per_op"`
			} `json:"benchmarks"`
		} `json:"gate"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	bm := doc.Benchmarks
	if len(bm) == 0 {
		bm = doc.Gate.Benchmarks
	}
	if len(bm) == 0 {
		return nil, fmt.Errorf("%s: no benchmark medians found", path)
	}
	out := make(map[string]float64, len(bm))
	for k, v := range bm {
		out[k] = v.NsPerOp
	}
	return out, nil
}

// FitCosts derives per-exec cost coefficients from benchmark medians:
//
//	ExecNs   = VMRunCompiled ns/op when present, else VMRun ns/op
//	TriageNs = (Campaign − CampaignNoTriage) / CampaignBenchExecs
//	MutateNs = CampaignNoTriage / CampaignBenchExecs − ExecNs
//
// The campaign loop executes compiled programs, so VMRunCompiled is
// the hot-path exec cost; with it, MutateNs absorbs the per-candidate
// compile step alongside mutation proper (the identity ExecNs +
// MutateNs ≈ CampaignNoTriage/CampaignBenchExecs still holds).
// Because the coefficients are a pure function of the medians, the
// CostModel must be re-fitted whenever the benchgate baseline is
// re-recorded — a stale fit silently plans against the old kernel.
//
// Coefficients the benchmarks do not cover (checkpoint, sync, LLM)
// stay zero; Calibrate fills the sync costs from a real hub-attached
// run.
func FitCosts(medians map[string]float64) (CostModel, error) {
	full := medians[benchCampaign]
	noTriage := medians[benchCampaignNoTriage]
	vm := medians[benchVMRun]
	if full <= 0 || noTriage <= 0 || vm <= 0 {
		return CostModel{}, fmt.Errorf("sim: medians missing %s, %s, or %s",
			benchCampaign, benchCampaignNoTriage, benchVMRun)
	}
	if cv := medians[benchVMRunCompiled]; cv > 0 {
		vm = cv
	}
	c := CostModel{ExecNs: vm}
	c.TriageNs = math.Max(0, (full-noTriage)/CampaignBenchExecs)
	c.MutateNs = math.Max(0, noTriage/CampaignBenchExecs-vm)
	return c, nil
}

// FitYield fits the saturating yield curve to a Progress trace by
// deterministic coarse-to-fine grid search minimizing exec-weighted
// squared error (late observations carry more weight because the
// planner cares most about final coverage). The search grids and
// tie-breaking are fixed, so the same trace always fits the same
// parameters — no RNG, no convergence-order dependence.
func FitYield(pts []TracePoint) (YieldModel, error) {
	obs := yieldObservations(pts)
	if len(obs) < 3 {
		return YieldModel{}, errors.New("sim: yield fit needs at least 3 trace points with execs > 0")
	}
	maxCover, maxExecs := 0, 0
	for _, p := range obs {
		if p.Cover > maxCover {
			maxCover = p.Cover
		}
		if p.Execs > maxExecs {
			maxExecs = p.Execs
		}
	}
	if maxCover <= 0 {
		return YieldModel{}, errors.New("sim: trace has no coverage observations")
	}

	sse := func(y YieldModel) float64 {
		s := 0.0
		for _, p := range obs {
			d := y.Cover(float64(p.Execs)) - float64(p.Cover)
			s += float64(p.Execs) * d * d
		}
		return s
	}

	// Cmax cannot be below the best observed cover; K is searched in
	// log space around the observed exec scale; B spans gentle to
	// sharp saturation.
	cmaxLo, cmaxHi := float64(maxCover), 3*float64(maxCover)
	kLo, kHi := float64(maxExecs)/256, float64(maxExecs)*16
	bLo, bHi := 0.1, 4.0

	best := YieldModel{}
	bestErr := math.Inf(1)
	const steps = 16
	for round := 0; round < 3; round++ {
		for ci := 0; ci <= steps; ci++ {
			cmax := cmaxLo + (cmaxHi-cmaxLo)*float64(ci)/steps
			for ki := 0; ki <= steps; ki++ {
				k := kLo * math.Pow(kHi/kLo, float64(ki)/steps)
				for bi := 0; bi <= steps; bi++ {
					b := bLo + (bHi-bLo)*float64(bi)/steps
					y := YieldModel{Cmax: cmax, K: k, B: b}
					if e := sse(y); e < bestErr {
						bestErr, best = e, y
					}
				}
			}
		}
		// Refine: shrink each range around the incumbent, keeping the
		// Cmax floor at the observed maximum.
		cmaxLo = math.Max(float64(maxCover), best.Cmax/1.3)
		cmaxHi = best.Cmax * 1.3
		kLo, kHi = best.K/2, best.K*2
		bLo, bHi = math.Max(0.05, best.B/1.5), best.B*1.5
	}
	if !best.Valid() {
		return YieldModel{}, errors.New("sim: yield fit did not converge to a valid curve")
	}
	return best, nil
}

// Calibrate overrides the bench-derived coefficients with ground
// truth from one recorded campaign (a RunRecord built from syzfuzz
// -stats-json plus the hub's /v1/stats): per-exec busy time from
// WorkNs split into exec/mutate by the prior ratio, amortized triage
// from TriageNs, and the sync round-trip decomposed into hub service
// time (measured hub-side) and client-side base cost. Bench medians
// give the model portable priors; calibration pins it to the machine
// and configuration the plan is actually for.
func (m *Model) Calibrate(rec RunRecord) {
	if rec.Execs <= 0 {
		return
	}
	if rec.SeedsPerSync > 0 {
		m.SeedsPerSync = rec.SeedsPerSync
	}
	if rec.WorkNs > 0 {
		work := float64(rec.WorkNs)
		triage := math.Min(float64(rec.TriageNs), work)
		m.Cost.TriageNs = triage / float64(rec.Execs)
		core := (work - triage) / float64(rec.Execs)
		if prior := m.Cost.ExecNs + m.Cost.MutateNs; prior > 0 {
			m.Cost.ExecNs = core * m.Cost.ExecNs / prior
			m.Cost.MutateNs = core * m.Cost.MutateNs / prior
		} else {
			// No bench prior: split on the refactored loop's typical
			// raw-exec share.
			m.Cost.ExecNs = 0.7 * core
			m.Cost.MutateNs = 0.3 * core
		}
	}
	if rec.BytesPerSync > 0 {
		m.BytesPerSync = rec.BytesPerSync
	}
	if rec.Syncs > 0 && rec.SyncNs > 0 {
		roundTrip := float64(rec.SyncNs) / float64(rec.Syncs)
		if base, perByte, ok := fitHubService(rec.WorkerSyncs); ok {
			m.Cost.HubServiceNs = base
			m.Cost.HubPerByteNs = perByte
		} else if rec.HubServiceNsMean > 0 {
			m.Cost.HubServiceNs = rec.HubServiceNsMean
		}
		m.Cost.SyncBaseNs = math.Max(0,
			roundTrip-m.Cost.HubServiceNs-m.Cost.HubPerByteNs*m.BytesPerSync-
				m.SeedsPerSync*m.Cost.SyncPerSeedNs)
	}
	m.CrashesPerExec = float64(rec.Crashes) / float64(rec.Execs)
}

// fitHubService decomposes hub service time into a per-sync base and a
// per-byte slope by count-weighted least squares over per-worker sync
// aggregates (service = base + perByte·bytes). It needs at least two
// samples with distinct payload sizes for leverage; otherwise ok is
// false and the caller falls back to the fleet-wide service mean. Both
// coefficients are clamped non-negative — a negative slope (noise, or
// a cold-start worker with big first payloads) degrades to the
// flat-mean model rather than predicting cheaper syncs for bigger
// payloads.
func fitHubService(samples []SyncSample) (base, perByte float64, ok bool) {
	var w, sumB, sumS float64
	for _, s := range samples {
		if s.Count <= 0 || s.MeanServiceNs <= 0 {
			continue
		}
		w += float64(s.Count)
		sumB += float64(s.Count) * s.MeanBytes
		sumS += float64(s.Count) * s.MeanServiceNs
	}
	if w <= 0 {
		return 0, 0, false
	}
	meanB, meanS := sumB/w, sumS/w
	var sbb, sbs float64
	for _, s := range samples {
		if s.Count <= 0 || s.MeanServiceNs <= 0 {
			continue
		}
		db := s.MeanBytes - meanB
		sbb += float64(s.Count) * db * db
		sbs += float64(s.Count) * db * (s.MeanServiceNs - meanS)
	}
	if sbb <= 0 {
		// All samples at one payload size: no per-byte leverage.
		return 0, 0, false
	}
	perByte = sbs / sbb
	base = meanS - perByte*meanB
	if perByte < 0 {
		perByte = 0
		base = meanS
	}
	if base < 0 {
		base = 0
		if meanB > 0 {
			perByte = meanS / meanB
		}
	}
	return base, perByte, true
}
