package sim_test

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/fuzz/corpusstore"
	"kernelgpt/internal/hub"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/sim"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

// TestValidateAgainstRealCampaign is the ISSUE-6 acceptance gate run
// in-process: a real 3-worker RunParallel campaign attached to a real
// hub produces a Progress trace and timing stats; `syzplan fit`'s
// pipeline (bench priors → yield fit → calibration) builds a model
// from them; and Validate must predict the run's exec total within
// ±10% and its final union coverage within ±5%. Fit and prediction
// are exercised twice to pin determinism.
func TestValidateAgainstRealCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("real campaign: seconds of fuzzing")
	}
	c := corpus.Build(corpus.TestConfig())
	kernel := vkernel.New(c)
	f := &syzlang.File{}
	for _, n := range []string{"dm", "cec"} {
		h := c.Handler(n)
		if h == nil {
			t.Fatalf("no handler %q", n)
		}
		f.Merge(corpus.OracleSpec(h))
	}
	tgt, err := prog.Compile(f, c.Env())
	if err != nil {
		t.Fatal(err)
	}

	store, err := corpusstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	h, err := hub.New(tgt, store)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(h.Handler())
	defer srv.Close()
	ctx := context.Background()
	client, err := hub.Dial(ctx, srv.URL, "acceptance", tgt)
	if err != nil {
		t.Fatal(err)
	}

	const (
		execs      = 12_000
		shardExecs = 1024
		workers    = 3
		seed       = int64(5)
	)
	cfg := fuzz.DefaultConfig(execs, seed)
	cfg.ShardExecs = shardExecs
	cfg.Hub = client
	var trace []sim.TracePoint
	cfg.Progress = func(p fuzz.Progress) {
		trace = append(trace, sim.TracePoint{
			ElapsedNs: p.ElapsedNs, Execs: p.Execs, Cover: p.Cover, Crashes: p.Crashes,
		})
	}
	fz := fuzz.New(tgt, kernel)
	stats, err := fz.RunParallel(ctx, cfg, workers)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Execs != execs || stats.CoverCount() == 0 {
		t.Fatalf("campaign degenerate: execs=%d cover=%d", stats.Execs, stats.CoverCount())
	}

	rec := sim.RunRecord{
		Workers: workers, ShardExecs: shardExecs, Seed: seed, Hub: true,
		Execs: stats.Execs, Cover: stats.CoverCount(), Crashes: stats.UniqueCrashes(),
		ElapsedNs: stats.Elapsed.Nanoseconds(),
		WorkNs:    stats.WorkTime.Nanoseconds(),
		TriageNs:  stats.TriageTime.Nanoseconds(),
		SyncNs:    stats.SyncTime.Nanoseconds(),
		Syncs:     stats.Syncs,
	}
	if agg := h.Stats().Sync; agg.Count > 0 {
		rec.HubServiceNsMean = agg.MeanServiceNs()
	}

	buildModel := func() *sim.Model {
		t.Helper()
		medians, err := sim.LoadBenchMedians(filepath.Join("..", "..", "BENCH_fuzz.json"))
		if err != nil {
			t.Fatal(err)
		}
		costs, err := sim.FitCosts(medians)
		if err != nil {
			t.Fatal(err)
		}
		yield, err := sim.FitYield(trace)
		if err != nil {
			t.Fatal(err)
		}
		m := &sim.Model{Cost: costs, Yield: yield}
		m.Calibrate(rec)
		return m
	}
	m := buildModel()
	t.Logf("rec: %+v", rec)
	t.Logf("model: %+v", m)

	// Wall tolerance is loose: the container's CPU count and load are
	// not the model's to predict (per-exec calibration self-corrects
	// for oversubscription, makespan noise remains).
	v, err := sim.Validate(m, rec, 0.10, 0.05, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("real: execs=%d cover=%d elapsed=%dms; predicted: execs=%d cover=%d wall=%dms (errors exec=%.1f%% cover=%.1f%% wall=%.1f%%)",
		rec.Execs, rec.Cover, rec.ElapsedNs/1e6,
		v.PredExecs, v.PredCover, v.PredWallNs/1e6,
		100*v.ExecErr, 100*v.CoverErr, 100*v.WallErr)
	if v.ExecErr > 0.10 {
		t.Errorf("exec prediction off by %.1f%% (bar ±10%%)", 100*v.ExecErr)
	}
	if v.CoverErr > 0.05 {
		t.Errorf("cover prediction off by %.1f%% (bar ±5%%)", 100*v.CoverErr)
	}

	// Determinism per seed: refit from the same trace and revalidate —
	// the model and every prediction must be bit-identical.
	m2 := buildModel()
	if *m2 != *m {
		t.Fatalf("refit produced a different model:\n%+v\n%+v", m, m2)
	}
	v2, err := sim.Validate(m2, rec, 0.10, 0.05, 0.50)
	if err != nil {
		t.Fatal(err)
	}
	if v2.PredExecs != v.PredExecs || v2.PredCover != v.PredCover || v2.PredWallNs != v.PredWallNs {
		t.Fatalf("predictions not deterministic: %+v vs %+v", v, v2)
	}
}
