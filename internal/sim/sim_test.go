package sim

import (
	"testing"
	"time"
)

// testModel is a hand-built model with round coefficients, so
// simulated timings are easy to reason about.
func testModel() *Model {
	return &Model{
		Cost: CostModel{
			ExecNs: 60_000, MutateNs: 30_000, TriageNs: 10_000,
			CheckpointNs: 500_000, SyncBaseNs: 1_000_000,
			SyncPerSeedNs: 10_000, HubServiceNs: 400_000, LLMGenNs: 2_000_000,
		},
		Yield:          YieldModel{Cmax: 1000, K: 2000, B: 0.9},
		SeedsPerSync:   10,
		CrashesPerExec: 1e-4,
	}
}

func TestSimulateDeterministic(t *testing.T) {
	m := testModel()
	cfg := FleetConfig{Workers: 4, Execs: 50_000, ShardExecs: 2048, Hub: true, Checkpoint: true, Seed: 7}
	a, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same config simulated differently:\n%+v\n%+v", a, b)
	}
	c, err := Simulate(m, FleetConfig{Workers: 4, Execs: 50_000, ShardExecs: 2048, Hub: true, Checkpoint: true, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.WallNs == c.WallNs {
		t.Fatal("different seeds produced identical makespans (jitter not applied)")
	}
}

func TestSimulateScalesWithWorkers(t *testing.T) {
	m := testModel()
	prev := int64(1 << 62)
	for _, w := range []int{1, 2, 4, 8} {
		r, err := Simulate(m, FleetConfig{Workers: w, Execs: 64_000, ShardExecs: 2048, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if r.Execs != 64_000 {
			t.Fatalf("workers=%d dropped execs: %d", w, r.Execs)
		}
		if r.WallNs > prev {
			t.Fatalf("workers=%d slower than fewer workers: %d > %d", w, r.WallNs, prev)
		}
		prev = r.WallNs
		// Work is conserved: the same budget costs the same busy time
		// within jitter, regardless of the pool size.
		wantWork := int64(64_000 * 100_000)
		if diff := r.WorkNs - wantWork; diff < -wantWork/20 || diff > wantWork/20 {
			t.Fatalf("workers=%d work time %d far from %d", w, r.WorkNs, wantWork)
		}
	}
	// A serial fleet's wall clock is its work time exactly.
	r1, _ := Simulate(m, FleetConfig{Workers: 1, Execs: 64_000, ShardExecs: 2048, Seed: 1})
	if r1.WallNs != r1.WorkNs {
		t.Fatalf("serial wall %d != work %d", r1.WallNs, r1.WorkNs)
	}
}

func TestSimulateHubAccounting(t *testing.T) {
	m := testModel()
	r, err := Simulate(m, FleetConfig{Workers: 3, Execs: 16_384, ShardExecs: 2048, Hub: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// One sync per unit plus the final push.
	if wantSyncs := r.Units + 1; r.Syncs != wantSyncs {
		t.Fatalf("want %d syncs, got %d", wantSyncs, r.Syncs)
	}
	if want := int64(float64(r.Syncs) * m.Cost.HubServiceNs); r.HubBusyNs != want {
		t.Fatalf("hub busy %d != syncs×service %d", r.HubBusyNs, want)
	}
	// Every exchange costs at least service + base + payload.
	minPer := m.Cost.HubServiceNs + m.Cost.SyncBaseNs + m.SeedsPerSync*m.Cost.SyncPerSeedNs
	if r.SyncNs < int64(float64(r.Syncs)*minPer) {
		t.Fatalf("sync time %d below the contention-free floor", r.SyncNs)
	}
	detached, _ := Simulate(m, FleetConfig{Workers: 3, Execs: 16_384, ShardExecs: 2048, Seed: 2})
	if detached.Syncs != 0 || detached.SyncNs != 0 || detached.WallNs >= r.WallNs {
		t.Fatalf("hub attachment must cost wall time: detached %+v vs attached %+v", detached, r)
	}
}

func TestSimulatePerByteHubCost(t *testing.T) {
	// The planner-visible win of a compact wire format: halving the
	// payload halves the per-byte share of hub busy time.
	m := testModel()
	m.Cost.HubPerByteNs = 10
	m.BytesPerSync = 4096
	cfg := FleetConfig{Workers: 3, Execs: 16_384, ShardExecs: 2048, Hub: true, Seed: 2}
	fat, err := Simulate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	perSvc := m.Cost.HubServiceNs + m.Cost.HubPerByteNs*m.BytesPerSync
	if want := int64(float64(fat.Syncs) * perSvc); fat.HubBusyNs != want {
		t.Fatalf("hub busy %d != syncs×(base+bytes) %d", fat.HubBusyNs, want)
	}
	lean := *m
	lean.BytesPerSync = m.BytesPerSync / 2
	slim, err := Simulate(&lean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	saved := float64(fat.Syncs) * m.Cost.HubPerByteNs * m.BytesPerSync / 2
	if got := fat.HubBusyNs - slim.HubBusyNs; got != int64(saved) {
		t.Fatalf("halved payload saved %d hub-busy ns, want %d", got, int64(saved))
	}
	if slim.WallNs >= fat.WallNs {
		t.Fatalf("smaller payloads must shorten the campaign: %d vs %d", slim.WallNs, fat.WallNs)
	}
}

func TestSimulateDeadlineTruncates(t *testing.T) {
	m := testModel()
	full, err := Simulate(m, FleetConfig{Workers: 2, Execs: 40_000, ShardExecs: 2048, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cut, err := Simulate(m, FleetConfig{Workers: 2, Execs: 40_000, ShardExecs: 2048, Seed: 3, DeadlineNs: full.WallNs / 2})
	if err != nil {
		t.Fatal(err)
	}
	if !cut.Truncated || cut.Execs >= full.Execs || cut.WallNs > full.WallNs/2 {
		t.Fatalf("deadline did not truncate: full %+v, cut %+v", full, cut)
	}
	// Throughput is roughly preserved: half the window, about half
	// the execs (proration + tail effects allow slack).
	if cut.Execs < full.Execs/3 {
		t.Fatalf("truncated run lost too many execs: %d of %d", cut.Execs, full.Execs)
	}
	if cover := m.Yield.Cover(float64(cut.Execs)); int(cover+1) < cut.Cover {
		t.Fatalf("cover %d above the yield curve %f", cut.Cover, cover)
	}
}

func TestSimulateLLMPhaseDelaysStart(t *testing.T) {
	m := testModel()
	base, _ := Simulate(m, FleetConfig{Workers: 2, Execs: 8192, ShardExecs: 2048, Seed: 4})
	llm, _ := Simulate(m, FleetConfig{Workers: 2, Execs: 8192, ShardExecs: 2048, Seed: 4, LLMSeeds: 50})
	want := base.WallNs + int64(50*m.Cost.LLMGenNs)
	if llm.WallNs != want {
		t.Fatalf("LLM phase wall %d, want %d", llm.WallNs, want)
	}
}

func TestMinWorkers(t *testing.T) {
	m := testModel()
	base := FleetConfig{ShardExecs: 2048, Seed: 5}
	// Pick a target well inside the asymptote and a deadline that a
	// mid-size pool can make.
	need := m.Yield.Execs(800)
	deadline := int64(need * m.Cost.perExecNs() / 3)
	plan, err := MinWorkers(m, base, 800, deadline, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Feasible {
		t.Fatalf("feasible target reported infeasible: %+v", plan)
	}
	if plan.Result.Cover < 800 || plan.Result.WallNs > deadline {
		t.Fatalf("plan result misses the target: %+v", plan.Result)
	}
	// Minimality: one fewer worker must miss the deadline.
	if plan.Workers > 1 {
		cfg := base
		cfg.Workers = plan.Workers - 1
		cfg.Execs = plan.ExecsNeeded
		r, err := Simulate(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if r.WallNs <= deadline {
			t.Fatalf("workers=%d already makes the deadline, MinWorkers said %d", cfg.Workers, plan.Workers)
		}
	}
	// An unreachable target is infeasible, not an error.
	impossible, err := MinWorkers(m, base, int(m.Yield.Cmax)+1, deadline, 16)
	if err != nil || impossible.Feasible {
		t.Fatalf("target beyond the asymptote: %+v err=%v", impossible, err)
	}
}

func TestSweepManyConfigsFast(t *testing.T) {
	m := testModel()
	var cfgs []FleetConfig
	for w := 1; w <= 8; w++ {
		for _, grain := range []int{1024, 2048, 4096, 8192} {
			for _, hub := range []bool{false, true} {
				cfgs = append(cfgs, FleetConfig{Workers: w, Execs: 100_000, ShardExecs: grain, Hub: hub, Seed: 6})
			}
		}
	}
	if len(cfgs) < 50 {
		t.Fatalf("sweep too small: %d", len(cfgs))
	}
	start := time.Now()
	results, err := Sweep(m, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("sweep of %d configs took %v (budget 1s)", len(cfgs), d)
	}
	if len(results) != len(cfgs) {
		t.Fatalf("sweep returned %d results for %d configs", len(results), len(cfgs))
	}
	for i, r := range results {
		if r.Execs != 100_000 || r.WallNs <= 0 {
			t.Fatalf("config %d degenerate result: %+v", i, r)
		}
	}
}
