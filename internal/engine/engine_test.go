package engine

import (
	"context"
	"testing"

	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

var (
	testCorpus = corpus.Build(corpus.TestConfig())
	ctx        = context.Background()
)

// fingerprint reduces a result to a comparable identity.
func fingerprint(r *core.Result) string {
	if r == nil {
		return "<nil>"
	}
	s := r.Handler.Name
	if r.Valid {
		s += ":valid"
	}
	if r.Spec != nil {
		s += "\n" + syzlang.Format(r.Spec)
	}
	return s
}

// TestWorkerCountInvariance: the engine must produce identical
// results for any pool size, in worklist order.
func TestWorkerCountInvariance(t *testing.T) {
	worklist := testCorpus.Incomplete(corpus.KindDriver)
	if len(worklist) < 2 {
		t.Fatal("test corpus too small")
	}
	base, err := New(testCorpus, WithModel("gpt-4", 5)).Generate(ctx, worklist)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		got, err := New(testCorpus, WithModel("gpt-4", 5), WithWorkers(workers)).Generate(ctx, worklist)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if fingerprint(got[i]) != fingerprint(base[i]) {
				t.Fatalf("workers=%d: result %d (%s) diverged", workers, i, worklist[i].Name)
			}
		}
	}
}

// TestMatchesSerialGenerator: the facade must agree with driving
// core.Generator by hand, the way the legacy loops did.
func TestMatchesSerialGenerator(t *testing.T) {
	h := testCorpus.Handler("dm")
	gen := core.New(llm.NewSim("gpt-4", 7), testCorpus, core.DefaultOptions())
	want := gen.GenerateFor(ctx, h)
	gen.FollowDependencies(ctx, want, nil)

	got := New(testCorpus, WithModel("gpt-4", 7)).GenerateFor(ctx, h)
	if fingerprint(got) != fingerprint(want) {
		t.Fatalf("engine diverged from serial generator:\n%s\nvs\n%s", fingerprint(got), fingerprint(want))
	}
}

// TestCacheDeduplicatesAcrossRuns: with a cache, re-generating the
// same handler must not re-bill the model.
func TestCacheDeduplicatesAcrossRuns(t *testing.T) {
	e := New(testCorpus, WithModel("gpt-4", 3), WithCache(4096))
	h := testCorpus.Handler("dm")
	first := e.GenerateFor(ctx, h)
	afterFirst := e.Usage()
	second := e.GenerateFor(ctx, h)
	afterSecond := e.Usage()

	if fingerprint(first) != fingerprint(second) {
		t.Fatal("cached regeneration changed the result")
	}
	if afterSecond != afterFirst {
		t.Fatalf("second run billed the model: %+v vs %+v", afterSecond, afterFirst)
	}
	st, ok := e.CacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("cache stats missing or empty: %+v ok=%v", st, ok)
	}
}

// TestSuiteMergesValidResults mirrors what the cmd binaries consume.
func TestSuiteMergesValidResults(t *testing.T) {
	e := New(testCorpus, WithModel("gpt-4", 1), WithWorkers(4), WithCache(2048))
	drivers, sockets, merged, err := e.Suite(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(drivers) != len(testCorpus.Incomplete(corpus.KindDriver)) ||
		len(sockets) != len(testCorpus.Incomplete(corpus.KindSocket)) {
		t.Fatal("worklist sizes wrong")
	}
	if merged == nil || len(merged.Syscalls) == 0 {
		t.Fatal("merged suite empty")
	}
	if errs := syzlang.Validate(merged, testCorpus.Env()); len(errs) > 0 {
		t.Fatalf("merged suite invalid: %v", errs[0])
	}
	if u := e.Usage(); u.Calls == 0 {
		t.Fatal("no usage recorded")
	}
}

// TestProgressCallback counts per-handler updates.
func TestProgressCallback(t *testing.T) {
	worklist := testCorpus.Incomplete(corpus.KindDriver)
	var updates []Progress
	e := New(testCorpus, WithModel("gpt-4", 1), WithWorkers(3),
		WithProgress(func(p Progress) { updates = append(updates, p) }))
	if _, err := e.Generate(ctx, worklist); err != nil {
		t.Fatal(err)
	}
	if len(updates) != len(worklist) {
		t.Fatalf("want %d updates, got %d", len(worklist), len(updates))
	}
	last := updates[len(updates)-1]
	if last.Done != len(worklist) || last.Total != len(worklist) {
		t.Fatalf("final update wrong: %+v", last)
	}
}

// TestCancellation: a cancelled context yields failed (but non-nil)
// results and the context error.
func TestCancellation(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(testCorpus, WithModel("gpt-4", 1), WithWorkers(2))
	results, err := e.Generate(cctx, testCorpus.Incomplete(corpus.KindDriver))
	if err == nil {
		t.Fatal("want context error")
	}
	for _, r := range results {
		if r == nil {
			t.Fatal("results must never be nil")
		}
		if r.Valid {
			t.Fatal("no generation should succeed under a pre-cancelled context")
		}
	}
}

// TestRepairRoundsOption: disabling repair must flow through to the
// pipeline (ubi_ctrl needs repair to validate at some seeds; at
// minimum the options must not be ignored).
func TestRepairRoundsOption(t *testing.T) {
	opts := core.DefaultOptions()
	eng := New(testCorpus, WithModel("gpt-4", 2), WithGeneratorOptions(opts), WithRepairRounds(0))
	if eng.gen == nil {
		t.Fatal("generator missing")
	}
	// WithRepairRounds(0) must disable repair entirely.
	e2 := New(testCorpus, WithModel("gpt-4", 2), WithRepairRounds(0))
	h := testCorpus.Handler("dm")
	res := e2.GenerateFor(ctx, h)
	if res.Repaired {
		t.Fatal("repair ran despite WithRepairRounds(0)")
	}
}
