// Package engine is the concurrency-ready facade over KernelGPT's
// specification-generation pipeline. It owns the wiring the cmd/
// binaries and benchmarks used to duplicate by hand — building the
// analysis client, stacking middleware (cache, retry, concurrency
// limit), and looping handlers through generation plus dependency
// following — and runs per-driver generation through a worker pool.
//
// Construction uses functional options:
//
//	eng := engine.New(corpus,
//		engine.WithClient(llm.NewSim("gpt-4", 1)),
//		engine.WithWorkers(8),
//		engine.WithCache(2048),
//		engine.WithRepairRounds(3))
//	results, err := eng.Generate(ctx, corpus.Incomplete(corpus.KindDriver))
//
// Generation results are deterministic and identical to the serial
// core.Generator loop for any worker count: the simulated analysis
// model is a pure function of (seed, prompt), so scheduling order
// cannot leak into the output, and results are returned in worklist
// order.
package engine

import (
	"context"
	"sync"
	"time"

	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/pool"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/telemetry"
)

// Progress is one per-handler completion update.
type Progress struct {
	Done, Total int
	Handler     string
	Valid       bool
}

// config collects the functional options.
type config struct {
	client       llm.Client
	model        string
	seed         uint64
	workers      int
	cacheSize    int
	retries      int
	retryBackoff time.Duration
	maxInFlight  int
	opts         core.Options
	progress     func(Progress)
	registry     *telemetry.Registry
	clock        telemetry.Clock
}

// Option configures an Engine.
type Option func(*config)

// WithClient supplies the analysis client. It wins over WithModel.
func WithClient(c llm.Client) Option {
	return func(cfg *config) { cfg.client = c }
}

// WithModel selects a simulated-model profile and fallibility seed
// (the default is gpt-4, seed 1).
func WithModel(name string, seed uint64) Option {
	return func(cfg *config) { cfg.model = name; cfg.seed = seed }
}

// WithWorkers sets the generation worker-pool size (default 1:
// serial, bit-for-bit the legacy loop).
func WithWorkers(n int) Option {
	return func(cfg *config) { cfg.workers = n }
}

// WithCache inserts an LRU completion cache of the given capacity in
// front of the client, deduplicating identical analysis prompts
// across drivers.
func WithCache(entries int) Option {
	return func(cfg *config) { cfg.cacheSize = entries }
}

// WithRetry inserts a retry/backoff layer (attempts total tries).
func WithRetry(attempts int, backoff time.Duration) Option {
	return func(cfg *config) { cfg.retries = attempts; cfg.retryBackoff = backoff }
}

// WithConcurrencyLimit bounds in-flight completions below the worker
// count (an API-quota guard; 0 means unlimited).
func WithConcurrencyLimit(n int) Option {
	return func(cfg *config) { cfg.maxInFlight = n }
}

// WithRepairRounds bounds the validation-and-repair loop (§3.2).
func WithRepairRounds(n int) Option {
	return func(cfg *config) {
		cfg.opts.Repair = n > 0
		cfg.opts.MaxRepairRounds = n
	}
}

// WithGeneratorOptions replaces the full core.Options (for ablation
// harnesses that toggle AllInOne, MaxIter, or tracing wholesale).
// Later fine-grained options still apply on top.
func WithGeneratorOptions(opts core.Options) Option {
	return func(cfg *config) { cfg.opts = opts }
}

// WithProgress installs a per-handler completion callback. Calls are
// serialized.
func WithProgress(fn func(Progress)) Option {
	return func(cfg *config) { cfg.progress = fn }
}

// WithTelemetry registers engine and LLM-client metrics on reg: an
// llm telemetry middleware outermost in the chain (request/error,
// cache hit/miss, retry, token, and latency series), a
// worker-occupancy gauge, and per-handler outcome counters. A nil
// registry disables everything (the default).
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(cfg *config) { cfg.registry = reg }
}

// WithClock overrides the telemetry clock (nil = system time). Only
// latency measurements read it; generation itself stays a pure
// function of the model seed.
func WithClock(c telemetry.Clock) Option {
	return func(cfg *config) { cfg.clock = c }
}

// engineMetrics is the engine-side telemetry bundle.
type engineMetrics struct {
	// workersBusy is a point-in-time worker-pool occupancy gauge
	// (engine_workers_busy): incremented when a worker picks up a
	// handler, decremented when it finishes.
	workersBusy *telemetry.Gauge
	// handlers/handlersValid count per-handler pipeline completions
	// (engine_handlers_total, engine_handlers_valid_total).
	handlers      *telemetry.Counter
	handlersValid *telemetry.Counter
	// handlerNs is the per-handler generation latency distribution
	// (engine_handler_ns), clock-injected like every other duration.
	handlerNs *telemetry.Histogram
}

func newEngineMetrics(reg *telemetry.Registry) *engineMetrics {
	if reg == nil {
		return nil
	}
	return &engineMetrics{
		workersBusy:   reg.Gauge("engine_workers_busy"),
		handlers:      reg.Counter("engine_handlers_total"),
		handlersValid: reg.Counter("engine_handlers_valid_total"),
		handlerNs:     reg.Histogram("engine_handler_ns", nil),
	}
}

// handlerDone records one completed handler (nil-safe).
func (m *engineMetrics) handlerDone(durNs int64, valid bool) {
	if m == nil {
		return
	}
	m.handlers.Inc()
	if valid {
		m.handlersValid.Inc()
	}
	m.handlerNs.Observe(durNs)
}

// Engine drives specification generation for a corpus.
type Engine struct {
	corpus   *corpus.Corpus
	client   llm.Client
	gen      *core.Generator
	workers  int
	progress func(Progress)
	metrics  *engineMetrics
	clock    telemetry.Clock
}

// New builds an Engine over a corpus with the given options.
func New(c *corpus.Corpus, options ...Option) *Engine {
	cfg := &config{model: "gpt-4", seed: 1, workers: 1, opts: core.DefaultOptions()}
	for _, o := range options {
		o(cfg)
	}
	client := cfg.client
	if client == nil {
		client = llm.NewSim(cfg.model, cfg.seed)
	}
	lm := llm.NewMetrics(cfg.registry)
	var mws []llm.Middleware
	// Telemetry sits outermost so it observes what callers are served:
	// hits flagged by the cache below it, successes salvaged by retries.
	mws = append(mws, llm.WithTelemetry(lm, cfg.clock))
	if cfg.cacheSize > 0 {
		mws = append(mws, llm.WithCache(cfg.cacheSize))
	}
	if cfg.retries > 1 {
		mws = append(mws, llm.WithRetryObserved(cfg.retries, cfg.retryBackoff, lm.RetryCounter()))
	}
	if cfg.maxInFlight > 0 {
		mws = append(mws, llm.WithConcurrencyLimit(cfg.maxInFlight))
	}
	client = llm.Chain(client, mws...)
	return &Engine{
		corpus:   c,
		client:   client,
		gen:      core.New(client, c, cfg.opts),
		workers:  cfg.workers,
		progress: cfg.progress,
		metrics:  newEngineMetrics(cfg.registry),
		clock:    cfg.clock,
	}
}

// Client returns the composed client (outermost middleware).
func (e *Engine) Client() llm.Client { return e.client }

// Usage reports cumulative token accounting for all generation done
// through this engine.
func (e *Engine) Usage() llm.Usage { return e.client.Usage() }

// CacheStats reports completion-cache effectiveness, if a cache was
// configured.
func (e *Engine) CacheStats() (llm.CacheStats, bool) {
	if cc, ok := llm.FindCache(e.client); ok {
		return cc.Stats(), true
	}
	return llm.CacheStats{}, false
}

// GenerateFor runs the full pipeline for one handler, following
// dependency discoveries (kvm_vm style) into secondary handlers.
func (e *Engine) GenerateFor(ctx context.Context, h *corpus.Handler) *core.Result {
	res := e.gen.GenerateFor(ctx, h)
	e.gen.FollowDependencies(ctx, res, nil)
	return res
}

// Generate runs the pipeline over a worklist through the worker pool
// and returns results in worklist order. On cancellation it returns
// the completed prefix's results (unstarted handlers yield failed
// Results, never nil) along with ctx.Err().
func (e *Engine) Generate(ctx context.Context, handlers []*corpus.Handler) ([]*core.Result, error) {
	results := make([]*core.Result, len(handlers))
	var mu sync.Mutex
	done := 0
	pool.Run(pool.Clamp(len(handlers), e.workers, 1), len(handlers), func(i int) {
		var t0 time.Time
		if e.metrics != nil {
			e.metrics.workersBusy.Add(1)
			defer e.metrics.workersBusy.Add(-1)
			t0 = e.clock.Now()
		}
		results[i] = e.GenerateFor(ctx, handlers[i])
		if e.metrics != nil {
			e.metrics.handlerDone(e.clock.Now().Sub(t0).Nanoseconds(), results[i].Valid)
		}
		if e.progress != nil {
			mu.Lock()
			done++
			e.progress(Progress{
				Done: done, Total: len(handlers),
				Handler: handlers[i].Name, Valid: results[i].Valid,
			})
			mu.Unlock()
		}
	})
	return results, ctx.Err()
}

// GenerateKind generates for every incomplete handler of one kind.
func (e *Engine) GenerateKind(ctx context.Context, kind corpus.Kind) ([]*core.Result, error) {
	return e.Generate(ctx, e.corpus.Incomplete(kind))
}

// Suite generates for every incomplete driver and socket handler and
// returns the per-kind results plus the merged valid suite.
func (e *Engine) Suite(ctx context.Context) (drivers, sockets []*core.Result, merged *syzlang.File, err error) {
	drivers, err = e.GenerateKind(ctx, corpus.KindDriver)
	if err != nil {
		return drivers, nil, nil, err
	}
	sockets, err = e.GenerateKind(ctx, corpus.KindSocket)
	if err != nil {
		return drivers, sockets, nil, err
	}
	all := append(append([]*core.Result{}, drivers...), sockets...)
	return drivers, sockets, core.MergeSpecs(all), nil
}
