package engine

import (
	"testing"
	"time"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/telemetry"
)

func fixedClock() telemetry.Clock {
	at := time.Unix(1_700_000_000, 0).UTC()
	return func() time.Time { return at }
}

// TestEngineTelemetry: a telemetry-enabled engine reports handler
// outcomes, pool occupancy returning to zero, and LLM-chain series
// that reconcile with the engine's own cache accounting.
func TestEngineTelemetry(t *testing.T) {
	worklist := testCorpus.Incomplete(corpus.KindDriver)
	reg := telemetry.NewRegistry()
	e := New(testCorpus, WithModel("gpt-4", 5), WithWorkers(4),
		WithCache(2048), WithRetry(3, 0),
		WithTelemetry(reg), WithClock(fixedClock()))
	results, err := e.Generate(ctx, worklist)
	if err != nil {
		t.Fatal(err)
	}
	valid := 0
	for _, r := range results {
		if r.Valid {
			valid++
		}
	}
	if got := reg.Counter("engine_handlers_total").Value(); got != int64(len(worklist)) {
		t.Errorf("engine_handlers_total = %d, want %d", got, len(worklist))
	}
	if got := reg.Counter("engine_handlers_valid_total").Value(); got != int64(valid) {
		t.Errorf("engine_handlers_valid_total = %d, want %d", got, valid)
	}
	if got := reg.Gauge("engine_workers_busy").Value(); got != 0 {
		t.Errorf("engine_workers_busy = %d after Generate, want 0", got)
	}
	if got := reg.Histogram("engine_handler_ns", nil).Count(); got != int64(len(worklist)) {
		t.Errorf("engine_handler_ns count = %d, want %d", got, len(worklist))
	}
	// The chain-surface cache series must agree with CacheStats.
	cs, ok := e.CacheStats()
	if !ok {
		t.Fatal("cache stats missing")
	}
	if got := reg.Counter("llm_cache_hits_total").Value(); got != int64(cs.Hits) {
		t.Errorf("llm_cache_hits_total = %d, CacheStats.Hits = %d", got, cs.Hits)
	}
	if got := reg.Counter("llm_cache_misses_total").Value(); got != int64(cs.Misses) {
		t.Errorf("llm_cache_misses_total = %d, CacheStats.Misses = %d", got, cs.Misses)
	}
	u := e.Usage()
	if got := reg.Counter("llm_requests_total").Value(); got != int64(cs.Hits+cs.Misses) {
		t.Errorf("llm_requests_total = %d, want hits+misses = %d", got, cs.Hits+cs.Misses)
	}
	wantTokens := int64(u.PromptTokens + u.CompletionTokens)
	gotTokens := reg.Counter(`llm_tokens_total{kind="prompt"}`).Value() +
		reg.Counter(`llm_tokens_total{kind="completion"}`).Value()
	if gotTokens != wantTokens {
		t.Errorf("llm_tokens_total = %d, Usage total = %d", gotTokens, wantTokens)
	}
}

// TestEngineTelemetryDeterminism: instrumentation must not perturb
// generation — a telemetry-enabled run produces the same results as a
// bare one.
func TestEngineTelemetryDeterminism(t *testing.T) {
	worklist := testCorpus.Incomplete(corpus.KindDriver)
	base, err := New(testCorpus, WithModel("gpt-4", 5)).Generate(ctx, worklist)
	if err != nil {
		t.Fatal(err)
	}
	got, err := New(testCorpus, WithModel("gpt-4", 5), WithWorkers(4),
		WithTelemetry(telemetry.NewRegistry()), WithClock(fixedClock())).Generate(ctx, worklist)
	if err != nil {
		t.Fatal(err)
	}
	for i := range base {
		if fingerprint(got[i]) != fingerprint(base[i]) {
			t.Fatalf("telemetry perturbed result %d (%s)", i, worklist[i].Name)
		}
	}
}

// TestEngineTelemetryDisabledIsDefault: without WithTelemetry the
// chain must stay free of telemetry layers.
func TestEngineTelemetryDisabledIsDefault(t *testing.T) {
	e := New(testCorpus, WithModel("gpt-4", 1), WithCache(8), WithRetry(2, 0))
	if e.metrics != nil {
		t.Error("metrics bundle allocated without WithTelemetry")
	}
	if _, ok := llm.FindCache(e.Client()); !ok {
		t.Error("cache missing from default chain")
	}
}
