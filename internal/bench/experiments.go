package bench

import (
	"fmt"
	"sort"

	"kernelgpt/internal/baseline"
	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

// Table1 reproduces "Specifications for driver/socket handlers":
// handler totals, incomplete counts, SyzDescribe's valid specs, and
// KernelGPT's valid (and repaired) specs.
func (r *Runner) Table1() *Table {
	t := &Table{
		ID:     "table1",
		Title:  "Specifications for driver/socket handlers",
		Header: []string{"", "# Total", "# Incomplete", "SyzDescribe # Valid", "KernelGPT # Valid (Fixed)"},
	}
	gen := r.generate(r.Opts.Model)
	base := r.syzdescribe()

	countValid := func(results []*core.Result) (valid, fixed int) {
		for _, res := range results {
			if res.Valid {
				valid++
				if res.Repaired {
					fixed++
				}
			}
		}
		return
	}
	baseValid := 0
	for _, res := range base.drivers {
		if res.Valid {
			baseValid++
		}
	}
	dv, df := countValid(gen.drivers)
	sv, sf := countValid(gen.sockets)
	t.AddRow("Driver", len(r.Corpus.Loaded(corpus.KindDriver)), len(gen.drivers),
		baseValid, fmt.Sprintf("%d (%d)", dv, df))
	t.AddRow("Socket", len(r.Corpus.Loaded(corpus.KindSocket)), len(gen.sockets),
		"N/A", fmt.Sprintf("%d (%d)", sv, sf))
	t.AddRow("Total", len(r.Corpus.Loaded(corpus.KindDriver))+len(r.Corpus.Loaded(corpus.KindSocket)),
		len(gen.drivers)+len(gen.sockets), baseValid, fmt.Sprintf("%d (%d)", dv+sv, df+sf))
	t.Note("paper: drivers 278/75, SyzDescribe 20, KernelGPT 70 (30); sockets 81/66, KernelGPT 57 (12)")
	return t
}

// Figure7 reproduces the missing-specification distribution
// histograms: handler counts per missing-percentage bucket.
func (r *Runner) Figure7() *Table {
	t := &Table{
		ID:     "figure7",
		Title:  "Missing specification distribution (histogram)",
		Header: []string{"Missing %", "# Driver handlers", "# Socket handlers"},
	}
	buckets := []struct {
		lo, hi float64
		label  string
	}{
		{0.0, 0.25, "(0-25]"},
		{0.25, 0.50, "(25-50]"},
		{0.50, 0.75, "(50-75]"},
		{0.75, 1.01, "(75-100]"},
	}
	counts := map[string][2]int{}
	for _, kindIdx := range []struct {
		kind corpus.Kind
		slot int
	}{{corpus.KindDriver, 0}, {corpus.KindSocket, 1}} {
		for _, h := range r.Corpus.Incomplete(kindIdx.kind) {
			f := corpus.MissingFraction(h)
			for _, b := range buckets {
				if f > b.lo && f <= b.hi {
					c := counts[b.label]
					c[kindIdx.slot]++
					counts[b.label] = c
				}
			}
		}
	}
	over80 := 0
	for _, h := range r.Corpus.Incomplete(corpus.KindSocket) {
		if corpus.MissingFraction(h) > 0.8 {
			over80++
		}
	}
	for _, b := range buckets {
		c := counts[b.label]
		t.AddRow(b.label, c[0], c[1])
	}
	t.Note("sockets with >80%% missing: %d (paper: 22)", over80)
	return t
}

// Table2 reproduces "Newly generated syscall descriptions".
func (r *Runner) Table2() *Table {
	t := &Table{
		ID:     "table2",
		Title:  "Newly generated syscall descriptions",
		Header: []string{"", "SyzDescribe # Syscalls", "# Types", "KernelGPT # Syscalls", "# Types"},
	}
	gen := r.generate(r.Opts.Model)
	base := r.syzdescribe()
	baseCalls, baseTypes := 0, 0
	for _, res := range base.drivers {
		if res.Valid {
			baseCalls += res.NewSyscalls()
			baseTypes += res.NewTypes()
		}
	}
	sum := func(results []*core.Result) (calls, types int) {
		for _, res := range results {
			c, ty := newSyscallCount(res)
			calls += c
			types += ty
		}
		return
	}
	dc, dt := sum(gen.drivers)
	sc, st := sum(gen.sockets)
	t.AddRow("Driver", baseCalls, baseTypes, dc, dt)
	t.AddRow("Socket", "N/A", "N/A", sc, st)
	t.AddRow("Total", baseCalls, baseTypes, dc+sc, dt+st)
	t.Note("paper: SyzDescribe 146/168 (drivers only); KernelGPT 532/294 total")
	return t
}

// suiteCampaigns runs (and caches) the three whole-suite campaigns of
// Table 3 / Table 4.
type suiteCampaigns struct {
	syz, syzd, kgpt []*fuzz.Stats
}

func (r *Runner) suiteCampaigns() *suiteCampaigns {
	if r.campCache != nil {
		return r.campCache
	}
	existing := r.Corpus.ExistingSuite()
	base := r.syzdescribe()
	gen := r.generate(r.Opts.Model)

	syzT := r.compile(existing)
	syzdT := r.compile(existing, base.suite)
	kgptT := r.compile(existing, gen.suite)

	out := &suiteCampaigns{
		syz:  r.campaign(syzT, r.Opts.Execs, 1),
		syzd: r.campaign(syzdT, r.Opts.Execs, 2),
		kgpt: r.campaign(kgptT, r.Opts.Execs, 3),
	}
	r.campCache = out
	return out
}

// Table3 reproduces "Overall effectiveness": coverage, unique
// coverage vs plain Syzkaller, and mean unique crashes over Reps.
func (r *Runner) Table3() *Table {
	t := &Table{
		ID:     "table3",
		Title:  fmt.Sprintf("Overall effectiveness (%d rep.)", r.Opts.Reps),
		Header: []string{"Suite", "Cov", "Unique Cov", "Crash"},
	}
	camps := r.suiteCampaigns()
	syzCov := fuzz.UnionCover(camps.syz)
	row := func(name string, reps []*fuzz.Stats) {
		unique := "-"
		if name != "Syzkaller" {
			unique = fmt.Sprint(fuzz.UniqueTo(fuzz.UnionCover(reps), syzCov))
		}
		t.AddRow(name, fmt.Sprintf("%.0f", fuzz.MeanCover(reps)), unique,
			fmt.Sprintf("%.1f", fuzz.MeanCrashes(reps)))
	}
	row("Syzkaller", camps.syz)
	row("Syzkaller + SyzDescribe", camps.syzd)
	row("Syzkaller + KernelGPT", camps.kgpt)
	t.Note("paper shape: KernelGPT cov > Syzkaller > SyzDescribe; KernelGPT unique-cov > SyzDescribe unique-cov; crashes 17.7 / 16.0 / 13.7")
	return t
}

// Table4 reproduces "New bugs detected by KernelGPT": every planted
// new bug, with which suite's campaigns triggered it.
func (r *Runner) Table4() *Table {
	t := &Table{
		ID:     "table4",
		Title:  "New bugs detected by the generated specifications",
		Header: []string{"Crash with new specs", "CVE", "Confirmed", "Fixed", "KernelGPT", "Syzkaller", "SyzDescribe"},
	}
	camps := r.suiteCampaigns()
	// Extend the KernelGPT campaign for bug hunting: the paper's
	// fuzzing sessions ran for days; the planted stateful bugs need a
	// deeper exploration budget than the coverage comparison.
	gen := r.generate(r.Opts.Model)
	kgptT := r.compile(r.Corpus.ExistingSuite(), gen.suite)
	longCfg := fuzz.DefaultConfig(r.Opts.Execs*4, r.Opts.Seed*7919+17)
	longCfg.MaxCalls = 12 // deep stateful chains need longer programs
	long := fuzz.New(kgptT, r.Kernel).RunRepetitions(r.Ctx, longCfg, r.Opts.Reps)

	kgptHits := fuzz.UnionCrashTitles(camps.kgpt)
	for title := range fuzz.UnionCrashTitles(long) {
		kgptHits[title] = true
	}
	syzHits := fuzz.UnionCrashTitles(camps.syz)
	syzdHits := fuzz.UnionCrashTitles(camps.syzd)

	bugs := r.Corpus.AllBugs()
	titles := make([]string, 0, len(bugs))
	for title := range bugs {
		titles = append(titles, title)
	}
	sort.Strings(titles)
	found, cves := 0, 0
	for _, title := range titles {
		b := bugs[title]
		mark := func(hit bool) string {
			if hit {
				return "FOUND"
			}
			return "x"
		}
		if kgptHits[title] {
			found++
			if b.CVE != "" {
				cves++
			}
		}
		t.AddRow(title, orDash(b.CVE), yes(b.Confirmed), yes(b.Fixed),
			mark(kgptHits[title]), mark(syzHits[title]), mark(syzdHits[title]))
	}
	t.Note("planted new bugs: %d; found by KernelGPT specs: %d (%d with CVEs)", len(bugs), found, cves)
	t.Note("paper: 24 bugs, none detectable by default Syzkaller or SyzDescribe")
	return t
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "-"
}

// driverSuite builds the three per-driver specs of Table 5 for one
// handler: existing Syzkaller, SyzDescribe, KernelGPT.
func (r *Runner) driverSuite(name string) (syz, syzd, kgpt *syzlang.File) {
	h := r.Corpus.Handler(name)
	syz = familySpec(r.Corpus, h, true)
	if res := baseline.New(r.Corpus).GenerateFor(h); res.Valid {
		syzd = res.Spec
	}
	kgpt = r.kernelGPTFamily(name)
	return
}

// kernelGPTFamily generates (and caches) the KernelGPT spec for one
// handler family, regardless of existing-suite completeness (§5.2
// generates for the existing drivers too).
func (r *Runner) kernelGPTFamily(name string) *syzlang.File {
	if r.t5Cache == nil {
		r.t5Cache = map[string]*syzlang.File{}
	}
	if f, ok := r.t5Cache[name]; ok {
		return f
	}
	gen := r.generate(r.Opts.Model)
	res := gen.resultFor(name)
	if res == nil {
		res = gen.eng.GenerateFor(r.Ctx, r.Corpus.Handler(name))
	}
	var f *syzlang.File
	if res.Valid {
		f = res.Spec
	}
	r.t5Cache[name] = f
	return f
}

// perDriverCov compiles a spec alone and fuzzes the driver in
// isolation (§5.2 enables only the driver's own syscalls).
func (r *Runner) perDriverCov(spec *syzlang.File, seedOffset int64) (cov float64, crashes float64, nsys int) {
	if spec == nil || len(spec.Syscalls) == 0 {
		return 0, 0, 0
	}
	if errs := syzlang.Validate(spec, r.Corpus.Env()); len(errs) > 0 {
		return 0, 0, len(spec.Syscalls)
	}
	tgt := r.compile(spec)
	reps := r.campaign(tgt, r.Opts.PerDriverExecs, seedOffset)
	return fuzz.MeanCover(reps), fuzz.MeanCrashes(reps), len(spec.Syscalls)
}

// Table5 reproduces the per-driver comparison for the SyzDescribe
// evaluation set.
func (r *Runner) Table5() *Table {
	t := &Table{
		ID:    "table5",
		Title: "Per-driver specification comparison",
		Header: []string{"Driver", "Syzkaller #Sys", "Cov", "SyzDescribe #Sys", "Cov",
			"KernelGPT #Sys", "Cov", "Best"},
	}
	var totals [3]float64
	var totalSys [3]int
	wins := map[string]int{}
	for i, name := range corpus.Table5Names() {
		if name == "kvm_vm" || name == "kvm_vcpu" {
			continue
		}
		syz, syzd, kgpt := r.driverSuite(name)
		covS, _, nS := r.perDriverCov(syz, int64(i*31+1))
		covD, _, nD := r.perDriverCov(syzd, int64(i*31+2))
		covK, _, nK := r.perDriverCov(kgpt, int64(i*31+3))
		best := "Syzkaller"
		switch {
		case covK >= covS && covK >= covD:
			best = "KernelGPT"
		case covD >= covS && covD >= covK:
			best = "SyzDescribe"
		}
		wins[best]++
		totals[0] += covS
		totals[1] += covD
		totals[2] += covK
		totalSys[0] += nS
		totalSys[1] += nD
		totalSys[2] += nK
		cell := func(n int, cov float64) (string, string) {
			if n == 0 {
				return "Err", "-"
			}
			return fmt.Sprint(n), fmt.Sprintf("%.0f", cov)
		}
		sN, sC := cell(nS, covS)
		dN, dC := cell(nD, covD)
		kN, kC := cell(nK, covK)
		t.AddRow(name, sN, sC, dN, dC, kN, kC, best)
	}
	t.AddRow("Total", totalSys[0], fmt.Sprintf("%.0f", totals[0]),
		totalSys[1], fmt.Sprintf("%.0f", totals[1]),
		totalSys[2], fmt.Sprintf("%.0f", totals[2]), "")
	t.Note("wins: KernelGPT=%d SyzDescribe=%d Syzkaller=%d (paper: 20 / 4 / 4)",
		wins["KernelGPT"], wins["SyzDescribe"], wins["Syzkaller"])
	if totals[0] > 0 {
		t.Note("KernelGPT total cov vs Syzkaller: %+.1f%% (paper: +18.0%%)",
			100*(totals[2]-totals[0])/totals[0])
	}
	return t
}

// Table6 reproduces the per-socket comparison (SyzDescribe N/A).
func (r *Runner) Table6() *Table {
	t := &Table{
		ID:     "table6",
		Title:  "Per-socket specification comparison",
		Header: []string{"Socket", "Syzkaller #Sys", "Cov", "Crash", "KernelGPT #Sys", "Cov", "Crash"},
	}
	var totS, totK float64
	var sysS, sysK int
	var crS, crK float64
	for i, name := range corpus.Table6Names() {
		h := r.Corpus.Handler(name)
		syz := familySpec(r.Corpus, h, true)
		kgpt := r.kernelGPTFamily(name)
		covS, crashS, nS := r.perDriverCov(syz, int64(i*17+401))
		covK, crashK, nK := r.perDriverCov(kgpt, int64(i*17+402))
		totS += covS
		totK += covK
		sysS += nS
		sysK += nK
		crS += crashS
		crK += crashK
		t.AddRow(name, nS, fmt.Sprintf("%.0f", covS), fmt.Sprintf("%.1f", crashS),
			nK, fmt.Sprintf("%.0f", covK), fmt.Sprintf("%.1f", crashK))
	}
	t.AddRow("Total", sysS, fmt.Sprintf("%.0f", totS), fmt.Sprintf("%.1f", crS),
		sysK, fmt.Sprintf("%.0f", totK), fmt.Sprintf("%.1f", crK))
	if totS > 0 {
		t.Note("KernelGPT cov vs Syzkaller: %+.1f%% (paper: +18.6%%)", 100*(totK-totS)/totS)
	}
	return t
}

// ablationDrivers picks the first 10 valid Table 5 drivers (§5.2.3's
// subset).
func (r *Runner) ablationDrivers() []string {
	var names []string
	for _, n := range corpus.Table5Names() {
		if n == "kvm_vm" || n == "kvm_vcpu" {
			continue
		}
		names = append(names, n)
		if len(names) == 10 {
			break
		}
	}
	return names
}

// AblationIterative reproduces the iterative-vs-all-in-one ablation.
func (r *Runner) AblationIterative() *Table {
	t := &Table{
		ID:     "ablation-iterative",
		Title:  "Iterative multi-stage vs all-in-one prompting (first 10 drivers)",
		Header: []string{"Mode", "# Syscalls", "# Types", "Cov"},
	}
	modes := []struct {
		name     string
		allInOne bool
	}{{"Iterative", false}, {"All-in-one", true}}
	var res [2][3]float64
	for mi, mode := range modes {
		opts := core.DefaultOptions()
		opts.AllInOne = mode.allInOne
		eng := r.engine(r.Opts.Model, opts)
		for i, name := range r.ablationDrivers() {
			h := r.Corpus.Handler(name)
			gres := eng.GenerateFor(r.Ctx, h)
			if !gres.Valid {
				continue
			}
			res[mi][0] += float64(gres.NewSyscalls())
			res[mi][1] += float64(gres.NewTypes())
			cov, _, _ := r.perDriverCov(gres.Spec, int64(900+mi*100+i))
			res[mi][2] += cov
		}
		t.AddRow(mode.name, fmt.Sprintf("%.0f", res[mi][0]),
			fmt.Sprintf("%.0f", res[mi][1]), fmt.Sprintf("%.0f", res[mi][2]))
	}
	if res[1][0] > 0 {
		t.Note("iterative/all-in-one ratios: syscalls %.2fx, types %.2fx, cov %.2fx (paper: 1.28x / 2.37x / 1.39x)",
			res[0][0]/res[1][0], safeDiv(res[0][1], res[1][1]), safeDiv(res[0][2], res[1][2]))
	}
	return t
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// AblationModel reproduces the LLM-choice ablation (GPT-4 vs GPT-4o
// vs GPT-3.5).
func (r *Runner) AblationModel() *Table {
	t := &Table{
		ID:     "ablation-model",
		Title:  "LLM choice ablation (first 10 drivers)",
		Header: []string{"Model", "# Syscalls", "Cov"},
	}
	for mi, model := range llm.ModelNames() {
		eng := r.engine(model, core.DefaultOptions())
		var sys float64
		var cov float64
		for i, name := range r.ablationDrivers() {
			h := r.Corpus.Handler(name)
			gres := eng.GenerateFor(r.Ctx, h)
			if !gres.Valid {
				continue
			}
			sys += float64(gres.NewSyscalls())
			c, _, _ := r.perDriverCov(gres.Spec, int64(1300+mi*100+i))
			cov += c
		}
		t.AddRow(model, fmt.Sprintf("%.0f", sys), fmt.Sprintf("%.0f", cov))
	}
	t.Note("paper: gpt-3.5 85 syscalls (-21%% cov); gpt-4 143; gpt-4o 144 (comparable cov)")
	return t
}

// CorrectnessAudit reproduces §5.1.3: generated specs for the
// no-description drivers compared against the ground truth.
func (r *Runner) CorrectnessAudit() *Table {
	t := &Table{
		ID:     "audit",
		Title:  "Semantic correctness of generated specs (no-spec drivers)",
		Header: []string{"Metric", "Value"},
	}
	gen := r.generate(r.Opts.Model)
	audited, noMissing, wrongIDs, wrongIDDrivers, wrongTypes, wrongTypeDrivers, totalCalls := 0, 0, 0, 0, 0, 0, 0
	for _, res := range gen.drivers {
		h := res.Handler
		// Audit only the drivers with no existing descriptions (the
		// 45-driver population of §5.1.3).
		if h.SyzkallerCmds != nil || h.SyzkallerComplete {
			continue
		}
		if !res.Valid {
			continue
		}
		audited++
		oracleCmds := map[string]bool{}
		for i := range h.Cmds {
			oracleCmds[h.Cmds[i].Name] = true
		}
		described := map[string]bool{}
		wrongHere := 0
		for _, s := range res.Spec.Syscalls {
			if s.CallName != "ioctl" {
				continue
			}
			totalCalls++
			described[s.Variant] = true
			if !oracleCmds[s.Variant] {
				wrongHere++
			}
		}
		if wrongHere > 0 {
			wrongIDs += wrongHere
			wrongIDDrivers++
		}
		missing := 0
		for i := range h.Cmds {
			if !h.Cmds[i].Indirect && !described[h.Cmds[i].Name] {
				missing++
			}
		}
		if missing == 0 {
			noMissing++
		}
		badTypes := r.auditTypes(h, res.Spec)
		if badTypes > 0 {
			wrongTypes += badTypes
			wrongTypeDrivers++
		}
	}
	t.AddRow("audited drivers", audited)
	t.AddRow("drivers with no missing syscalls", fmt.Sprintf("%d (%.1f%%)", noMissing, pct(noMissing, audited)))
	t.AddRow("wrong identifier values (syscalls / drivers)", fmt.Sprintf("%d / %d", wrongIDs, wrongIDDrivers))
	t.AddRow("wrong types (syscalls / drivers)", fmt.Sprintf("%d / %d", wrongTypes, wrongTypeDrivers))
	t.AddRow("total audited ioctl descriptions", totalCalls)
	t.Note("paper: 42/45 (93.3%%) no missing; 3 wrong ids in 2 drivers; 9 wrong types in 7 drivers")
	return t
}

// auditTypes counts described commands whose payload struct shape
// disagrees with the ground truth (field count or len-relation).
func (r *Runner) auditTypes(h *corpus.Handler, spec *syzlang.File) int {
	bad := 0
	byName := map[string]*syzlang.StructDef{}
	for _, st := range spec.Structs {
		byName[st.Name] = st
	}
	for i := range h.Cmds {
		c := &h.Cmds[i]
		if c.Arg == "" {
			continue
		}
		st := byName[c.Arg]
		sm := h.StructByName(c.Arg)
		if st == nil || sm == nil {
			continue
		}
		if len(st.Fields) != len(sm.Fields) {
			bad++
			continue
		}
		for fi, f := range sm.Fields {
			if f.LenOf != "" && st.Fields[fi].Type.Ident != "len" {
				bad++
				break
			}
		}
	}
	return bad
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

// TokenCost reproduces the §5.1.1 accounting.
func (r *Runner) TokenCost() *Table {
	t := &Table{
		ID:     "tokens",
		Title:  "LLM token accounting for the generation run",
		Header: []string{"Metric", "Value"},
	}
	gen := r.generate(r.Opts.Model)
	u := gen.eng.Usage()
	t.AddRow("prompts (API calls)", u.Calls)
	t.AddRow("input tokens", u.PromptTokens)
	t.AddRow("output tokens", u.CompletionTokens)
	if u.Calls > 0 {
		t.AddRow("avg input tokens/prompt", u.PromptTokens/u.Calls)
		t.AddRow("avg output tokens/prompt", u.CompletionTokens/u.Calls)
	}
	t.AddRow("estimated cost (USD)", fmt.Sprintf("%.2f", u.CostUSD()))
	t.Note("paper: 5.56M input / 400K output, 2630/189 per prompt, $34")
	return t
}

// All runs every experiment in paper order.
func (r *Runner) All() []*Table {
	return []*Table{
		r.Table1(), r.Figure7(), r.Table2(), r.Table3(), r.Table4(),
		r.Table5(), r.Table6(), r.AblationIterative(), r.AblationModel(),
		r.AblationRepair(), r.AblationLocality(),
		r.CorrectnessAudit(), r.TokenCost(),
	}
}

// CoverOf exposes union coverage of the cached KernelGPT campaign for
// diagnostics.
func (r *Runner) CoverOf() *vkernel.CoverSet {
	return fuzz.UnionCover(r.suiteCampaigns().kgpt)
}

// AblationRepair quantifies the validation-and-repair phase (§3.2):
// Table 1's valid counts with repair disabled.
func (r *Runner) AblationRepair() *Table {
	t := &Table{
		ID:     "ablation-repair",
		Title:  "Specification validity with and without the repair phase",
		Header: []string{"Mode", "Valid drivers", "Valid sockets"},
	}
	for _, mode := range []struct {
		name   string
		repair bool
	}{{"Repair on", true}, {"Repair off", false}} {
		opts := core.DefaultOptions()
		opts.Repair = mode.repair
		// Deliberately a bare Generator, not r.engine(): this ablation
		// isolates the repair phase on direct generation, so dependency
		// following (which re-validates merged family specs and would
		// blur the repair-only signal on kvm-style chains) stays off.
		gen := core.New(llm.NewSim(r.Opts.Model, uint64(r.Opts.Seed)), r.Corpus, opts)
		drv, sck := 0, 0
		for _, h := range r.Corpus.Incomplete(corpus.KindDriver) {
			if gen.GenerateFor(r.Ctx, h).Valid {
				drv++
			}
		}
		for _, h := range r.Corpus.Incomplete(corpus.KindSocket) {
			if gen.GenerateFor(r.Ctx, h).Valid {
				sck++
			}
		}
		t.AddRow(mode.name, drv, sck)
	}
	t.Note("paper: repair recovers 30 driver and 12 socket specs that fail validation initially")
	return t
}

// AblationLocality quantifies the fuzzer's resource-locality call
// bias: stateful multi-call bugs (the CEC chain) depend on it.
func (r *Runner) AblationLocality() *Table {
	t := &Table{
		ID:     "ablation-locality",
		Title:  "Fuzzer call-locality bias vs uniform call choice",
		Header: []string{"Mode", "Cov", "New bugs hit"},
	}
	gen := r.generate(r.Opts.Model)
	tgt := r.compile(r.Corpus.ExistingSuite(), gen.suite)
	newBugs := r.Corpus.AllBugs()
	for _, mode := range []struct {
		name string
		off  bool
	}{{"Locality bias", false}, {"Uniform", true}} {
		cfg := fuzz.DefaultConfig(r.Opts.Execs, r.Opts.Seed*7919+71)
		cfg.NoLocality = mode.off
		reps := fuzz.New(tgt, r.Kernel).RunRepetitions(r.Ctx, cfg, r.Opts.Reps)
		hits := 0
		for title := range fuzz.UnionCrashTitles(reps) {
			if _, ok := newBugs[title]; ok {
				hits++
			}
		}
		t.AddRow(mode.name, fmt.Sprintf("%.0f", fuzz.MeanCover(reps)), hits)
	}
	t.Note("stateful chains (PriorCmds bugs) rely on Syzkaller-style call locality")
	return t
}
