// Package bench regenerates every table and figure of the paper's
// evaluation (§5): specification-generation statistics (Table 1,
// Figure 7, Table 2), whole-suite fuzzing effectiveness (Table 3),
// bug detection (Table 4), per-driver and per-socket comparisons
// (Tables 5 and 6), the §5.2.3 ablations, the §5.1.3 correctness
// audit, and the §5.1.1 token-cost accounting.
//
// Absolute numbers differ from the paper (the substrate is a virtual
// kernel, not a 96-core QEMU testbed); the reproduced quantities are
// the shapes: which suite wins, by roughly what factor, and which
// bugs only the generated specifications can reach.
package bench

import (
	"context"
	"fmt"
	"sort"

	"kernelgpt/internal/baseline"
	"kernelgpt/internal/core"
	"kernelgpt/internal/corpus"
	"kernelgpt/internal/engine"
	"kernelgpt/internal/fuzz"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/prog"
	"kernelgpt/internal/syzlang"
	"kernelgpt/internal/vkernel"
)

// Options size the experiments.
type Options struct {
	// Scale is the corpus scale (1.0 = paper scale).
	Scale float64
	// Execs is the per-campaign execution budget for the big suite
	// runs (Tables 3/4); per-driver runs use PerDriverExecs.
	Execs          int
	PerDriverExecs int
	// Reps is the repetition count (the paper uses 3).
	Reps int
	// Seed drives generation fallibility and fuzzing.
	Seed int64
	// Model selects the analysis LLM profile.
	Model string
	// Workers sizes the engine's generation worker pool (0 = serial).
	// Results are worker-count-invariant; this is a wall-clock knob.
	Workers int
}

// DefaultOptions sizes a full run (minutes of CPU).
func DefaultOptions() Options {
	return Options{Scale: 1.0, Execs: 60000, PerDriverExecs: 12000, Reps: 3, Seed: 1, Model: "gpt-4", Workers: 4}
}

// QuickOptions sizes a fast smoke run for tests and benchmarks.
func QuickOptions() Options {
	return Options{Scale: 0.05, Execs: 4000, PerDriverExecs: 1500, Reps: 2, Seed: 1, Model: "gpt-4", Workers: 4}
}

// Runner owns the shared state across experiments: the corpus, the
// kernel image, and cached generation results per model.
type Runner struct {
	Opts   Options
	Corpus *corpus.Corpus
	Kernel *vkernel.Kernel
	// Ctx cancels long experiment runs (benchtables wires SIGINT
	// here); defaults to context.Background().
	Ctx context.Context

	genCache  map[string]*genRun
	baseCache *baseRun
	campCache *suiteCampaigns
	t5Cache   map[string]*syzlang.File
}

// genRun caches one model's generation over the incomplete worklist.
type genRun struct {
	eng     *engine.Engine
	drivers []*core.Result
	sockets []*core.Result
	suite   *syzlang.File // merged KernelGPT specs
}

// baseRun caches the SyzDescribe run.
type baseRun struct {
	drivers []*baseline.Result
	suite   *syzlang.File
}

// NewRunner builds the corpus and kernel once.
func NewRunner(opts Options) *Runner {
	c := corpus.Build(corpus.Config{Scale: opts.Scale})
	return &Runner{
		Opts:     opts,
		Corpus:   c,
		Kernel:   vkernel.New(c),
		Ctx:      context.Background(), //syzlint:ctx -- default root; callers override Runner.Ctx
		genCache: map[string]*genRun{},
	}
}

// generate runs (or returns the cached) KernelGPT generation for a
// model over every incomplete handler through the engine's worker
// pool, following dependencies. Results are identical for any pool
// size.
func (r *Runner) generate(model string) *genRun {
	if g, ok := r.genCache[model]; ok {
		return g
	}
	run := &genRun{eng: r.engine(model, core.DefaultOptions())}
	var err error
	run.drivers, run.sockets, run.suite, err = run.eng.Suite(r.Ctx)
	if run.suite == nil {
		run.suite = &syzlang.File{}
	}
	if err == nil {
		// Cache only complete runs: a cancelled generation must not
		// poison later experiments with partial results.
		r.genCache[model] = run
	}
	return run
}

// engine builds a pooled generation engine for one model profile.
func (r *Runner) engine(model string, opts core.Options) *engine.Engine {
	return engine.New(r.Corpus,
		engine.WithClient(llm.NewSim(model, uint64(r.Opts.Seed))),
		engine.WithGeneratorOptions(opts),
		engine.WithWorkers(r.Opts.Workers),
		engine.WithCache(4096))
}

// syzdescribe runs (or returns the cached) baseline generation.
func (r *Runner) syzdescribe() *baseRun {
	if r.baseCache != nil {
		return r.baseCache
	}
	g := baseline.New(r.Corpus)
	run := &baseRun{}
	run.drivers = g.GenerateAll(r.Corpus.Incomplete(corpus.KindDriver))
	run.suite = baseline.MergeSpecs(run.drivers)
	r.baseCache = run
	return run
}

// compile builds a fuzzing target from a suite, panicking on internal
// inconsistency (suites are validated before they get here).
func (r *Runner) compile(files ...*syzlang.File) *prog.Target {
	merged := syzlang.MergeDedup(files...)
	t, err := prog.Compile(merged, r.Corpus.Env())
	if err != nil {
		panic(fmt.Sprintf("bench: suite does not compile: %v", err))
	}
	return t
}

// campaign runs Reps repetitions over a target (concurrently; each
// repetition is an independent campaign, so the stats match a serial
// run exactly).
func (r *Runner) campaign(t *prog.Target, execs int, seedOffset int64) []*fuzz.Stats {
	f := fuzz.New(t, r.Kernel)
	cfg := fuzz.DefaultConfig(execs, r.Opts.Seed*7919+seedOffset)
	return f.RunRepetitions(r.Ctx, cfg, r.Opts.Reps)
}

// handlerSpecNames collects the syscall names a suite defines for one
// handler family (handler plus descendants), for per-driver enables.
func handlerSpecNames(spec *syzlang.File) map[string]bool {
	out := map[string]bool{}
	if spec == nil {
		return out
	}
	for _, s := range spec.Syscalls {
		out[s.Name()] = true
	}
	return out
}

// familySpec merges the oracle/human specs of a handler and its
// descendants.
func familySpec(c *corpus.Corpus, h *corpus.Handler, human bool) *syzlang.File {
	var files []*syzlang.File
	var walk func(cur *corpus.Handler)
	walk = func(cur *corpus.Handler) {
		var f *syzlang.File
		if human {
			f = corpus.SyzkallerSpec(cur)
		} else {
			f = corpus.OracleSpec(cur)
		}
		if f != nil {
			files = append(files, f)
		}
		for _, cand := range c.Handlers {
			if cand.Parent == cur.Name {
				walk(cand)
			}
		}
	}
	walk(h)
	return syzlang.MergeDedup(files...)
}

// resultFor finds the cached generation result for a handler.
func (g *genRun) resultFor(name string) *core.Result {
	for _, res := range append(append([]*core.Result{}, g.drivers...), g.sockets...) {
		if res.Handler.Name == name {
			return res
		}
	}
	return nil
}

// newSyscallCount counts generated operations not present in the
// handler's existing human descriptions — the paper's "new syscalls"
// metric (Table 2).
func newSyscallCount(res *core.Result) (calls, types int) {
	if res.Spec == nil || !res.Valid {
		return 0, 0
	}
	existing := map[string]bool{}
	for _, c := range res.Handler.SyzkallerCmds {
		existing[c] = true
	}
	for _, s := range res.Spec.Syscalls {
		switch s.CallName {
		case "openat", "socket":
			continue
		}
		if existing[s.Variant] {
			continue
		}
		calls++
	}
	types = len(res.Spec.Structs) + len(res.Spec.Unions)
	return calls, types
}

// sortedHandlerNames returns loaded handler names sorted.
func (r *Runner) sortedHandlerNames(kind corpus.Kind) []string {
	var names []string
	for _, h := range r.Corpus.Loaded(kind) {
		names = append(names, h.Name)
	}
	sort.Strings(names)
	return names
}
