package bench

import (
	"strconv"
	"strings"
	"testing"
)

// quickRunner is shared: experiments cache inside it.
var quickRunner = NewRunner(QuickOptions())

func cell(t *testing.T, tb *Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Rows[row]) {
		t.Fatalf("table %s has no cell (%d,%d):\n%s", tb.ID, row, col, tb)
	}
	return tb.Rows[row][col]
}

func num(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.Fields(s)[0]
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric", s)
	}
	return v
}

func TestTable1Shape(t *testing.T) {
	tb := quickRunner.Table1()
	if len(tb.Rows) != 3 {
		t.Fatalf("want 3 rows:\n%s", tb)
	}
	// KernelGPT valid must exceed SyzDescribe valid on drivers.
	sd := num(t, cell(t, tb, 0, 3))
	kg := num(t, cell(t, tb, 0, 4))
	if kg <= sd {
		t.Fatalf("KernelGPT (%v) must beat SyzDescribe (%v):\n%s", kg, sd, tb)
	}
	if cell(t, tb, 1, 3) != "N/A" {
		t.Fatalf("SyzDescribe sockets must be N/A:\n%s", tb)
	}
}

func TestFigure7Shape(t *testing.T) {
	tb := quickRunner.Figure7()
	if len(tb.Rows) != 4 {
		t.Fatalf("want 4 buckets:\n%s", tb)
	}
	total := 0.0
	for i := range tb.Rows {
		total += num(t, cell(t, tb, i, 1))
	}
	if int(total) != len(quickRunner.Corpus.Incomplete(0)) {
		t.Fatalf("driver histogram does not cover all incomplete handlers:\n%s", tb)
	}
}

func TestTable2Shape(t *testing.T) {
	tb := quickRunner.Table2()
	sd := num(t, cell(t, tb, 2, 1))
	kg := num(t, cell(t, tb, 2, 3))
	if kg <= sd {
		t.Fatalf("KernelGPT new syscalls (%v) must exceed SyzDescribe (%v):\n%s", kg, sd, tb)
	}
}

func TestTable3Shape(t *testing.T) {
	tb := quickRunner.Table3()
	syz := num(t, cell(t, tb, 0, 1))
	kgpt := num(t, cell(t, tb, 2, 1))
	if kgpt <= syz {
		t.Fatalf("KernelGPT suite coverage (%v) must exceed Syzkaller (%v):\n%s", kgpt, syz, tb)
	}
	// Unique coverage of KernelGPT must exceed SyzDescribe's.
	uD := num(t, cell(t, tb, 1, 2))
	uK := num(t, cell(t, tb, 2, 2))
	if uK <= uD {
		t.Fatalf("KernelGPT unique cov (%v) must exceed SyzDescribe (%v):\n%s", uK, uD, tb)
	}
}

func TestTable4Exclusivity(t *testing.T) {
	tb := quickRunner.Table4()
	foundK, foundS, foundD := 0, 0, 0
	for _, row := range tb.Rows {
		if row[4] == "FOUND" {
			foundK++
		}
		if row[5] == "FOUND" {
			foundS++
		}
		if row[6] == "FOUND" {
			foundD++
		}
	}
	if foundS != 0 || foundD != 0 {
		t.Fatalf("baselines must not find new bugs (syz=%d syzd=%d):\n%s", foundS, foundD, tb)
	}
	if foundK == 0 {
		t.Fatalf("KernelGPT campaigns found no planted bugs:\n%s", tb)
	}
}

func TestTable5Shape(t *testing.T) {
	tb := quickRunner.Table5()
	last := tb.Rows[len(tb.Rows)-1]
	if last[0] != "Total" {
		t.Fatalf("missing total row:\n%s", tb)
	}
	syzTotal := num(t, last[2])
	kgptTotal := num(t, last[6])
	if kgptTotal <= syzTotal {
		t.Fatalf("KernelGPT total cov (%v) must exceed Syzkaller (%v):\n%s", kgptTotal, syzTotal, tb)
	}
}

func TestTable6Shape(t *testing.T) {
	tb := quickRunner.Table6()
	last := tb.Rows[len(tb.Rows)-1]
	syzTotal := num(t, last[2])
	kgptTotal := num(t, last[5])
	if kgptTotal <= syzTotal {
		t.Fatalf("KernelGPT socket cov (%v) must exceed Syzkaller (%v):\n%s", kgptTotal, syzTotal, tb)
	}
}

func TestAblationIterativeShape(t *testing.T) {
	tb := quickRunner.AblationIterative()
	iter := num(t, cell(t, tb, 0, 1))
	one := num(t, cell(t, tb, 1, 1))
	if iter <= one {
		t.Fatalf("iterative syscalls (%v) must exceed all-in-one (%v):\n%s", iter, one, tb)
	}
}

func TestAblationModelShape(t *testing.T) {
	tb := quickRunner.AblationModel()
	var gpt4, gpt35 float64
	for _, row := range tb.Rows {
		switch row[0] {
		case "gpt-4":
			gpt4 = num(t, row[1])
		case "gpt-3.5":
			gpt35 = num(t, row[1])
		}
	}
	if gpt35 >= gpt4 {
		t.Fatalf("gpt-3.5 syscalls (%v) must trail gpt-4 (%v):\n%s", gpt35, gpt4, tb)
	}
}

func TestCorrectnessAuditShape(t *testing.T) {
	tb := quickRunner.CorrectnessAudit()
	if len(tb.Rows) < 4 {
		t.Fatalf("audit incomplete:\n%s", tb)
	}
}

func TestTokenCostShape(t *testing.T) {
	tb := quickRunner.TokenCost()
	if num(t, cell(t, tb, 1, 1)) <= 0 {
		t.Fatalf("no input tokens recorded:\n%s", tb)
	}
}

func TestTableRendering(t *testing.T) {
	tb := quickRunner.Table1()
	text := tb.String()
	if !strings.Contains(text, "table1") || !strings.Contains(text, "Driver") {
		t.Fatalf("bad rendering:\n%s", text)
	}
}

func TestAblationRepairShape(t *testing.T) {
	tb := quickRunner.AblationRepair()
	on := num(t, cell(t, tb, 0, 1))
	off := num(t, cell(t, tb, 1, 1))
	if off > on {
		t.Fatalf("repair must not reduce valid specs (on=%v off=%v):\n%s", on, off, tb)
	}
}

func TestAblationLocalityShape(t *testing.T) {
	tb := quickRunner.AblationLocality()
	if len(tb.Rows) != 2 {
		t.Fatalf("want 2 rows:\n%s", tb)
	}
	biased := num(t, cell(t, tb, 0, 2))
	uniform := num(t, cell(t, tb, 1, 2))
	if biased < uniform {
		t.Fatalf("locality bias should not reduce bug discovery (%v vs %v):\n%s", biased, uniform, tb)
	}
}
