package bench

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result: title, column headers, rows,
// and free-form notes comparing against the paper's reported shape.
type Table struct {
	ID     string // "table1", "figure7", ...
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying the cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a formatted note line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}
