package prog

// The mutation subsystem is built from named operators. Each operator
// is one self-contained program transformation; the fuzzing loop
// selects among them — uniformly, or through the bandit Scheduler —
// and credits each operator with the new coverage its mutations find.
// Adding an operator means implementing the two-method interface and
// listing it in DefaultOperators (or passing a custom set to
// NewScheduler).

// MutateCtx carries the per-mutation environment an operator may use.
type MutateCtx struct {
	// MaxCalls bounds program growth (the same soft bound Generate
	// honors; operators may exceed it by the usual +4 slack).
	MaxCalls int
	// Donor supplies a second corpus program for crossover operators
	// (splice). It may be nil, or return nil, when no corpus exists;
	// donor-needing operators then report inapplicability.
	Donor func() *Prog
}

// maxCalls returns the effective call bound.
func (ctx *MutateCtx) maxCalls() int {
	if ctx == nil || ctx.MaxCalls <= 0 {
		return 8
	}
	return ctx.MaxCalls
}

// Operator is one named mutation. Apply mutates p in place, drawing
// all randomness from g.R, and reports whether it changed the
// program. Implementations must keep p valid under p.Validate —
// resource references only ever point at compatible earlier calls.
type Operator interface {
	Name() string
	Apply(g *Gen, p *Prog, ctx *MutateCtx) bool
}

// DefaultOperators returns the full operator set in its canonical
// order. The order is part of campaign determinism: scheduler
// snapshots, Stats.Ops, and operator indices all follow it.
func DefaultOperators() []Operator {
	return []Operator{
		OpMutateArg{},
		OpArray{},
		OpInsert{},
		OpRemove{},
		OpDuplicate{},
		OpSplice{},
		OpConstants{},
		OpShuffle{},
	}
}

// OpMutateArg tweaks one randomly chosen scalar, flags, string,
// buffer, or union value inside one call.
type OpMutateArg struct{}

// Name implements Operator.
func (OpMutateArg) Name() string { return "mutateArg" }

// Apply implements Operator.
func (OpMutateArg) Apply(g *Gen, p *Prog, _ *MutateCtx) bool { return g.mutateArg(p) }

// OpArray resizes a variable-length array or regenerates one element.
type OpArray struct{}

// Name implements Operator.
func (OpArray) Name() string { return "array" }

// Apply implements Operator.
func (OpArray) Apply(g *Gen, p *Prog, _ *MutateCtx) bool {
	refs := collectValues(p, func(v *Value) bool { return v.Type.Kind == KindArray })
	if len(refs) == 0 {
		return false
	}
	ref := refs[g.R.Intn(len(refs))]
	g.mutateArray(p, ref.call, ref.v)
	return true
}

// OpInsert appends a freshly generated call (appending keeps every
// existing ResultOf index valid).
type OpInsert struct{}

// Name implements Operator.
func (OpInsert) Name() string { return "insert" }

// Apply implements Operator.
func (OpInsert) Apply(g *Gen, p *Prog, ctx *MutateCtx) bool {
	if len(p.Calls) >= ctx.maxCalls()+4 {
		return false
	}
	calls := g.enabledSyscalls()
	if len(calls) == 0 {
		return false
	}
	g.appendCall(p, calls[g.R.Intn(len(calls))], 0)
	return true
}

// OpRemove drops a random call, rewiring or cascading its dependents
// (see Gen.removeCall).
type OpRemove struct{}

// Name implements Operator.
func (OpRemove) Name() string { return "remove" }

// Apply implements Operator.
func (OpRemove) Apply(g *Gen, p *Prog, _ *MutateCtx) bool { return g.removeCall(p) }

// OpDuplicate re-appends a copy of a random call (same resource
// bindings), probing repeated-operation state bugs like the CEC UAF.
type OpDuplicate struct{}

// Name implements Operator.
func (OpDuplicate) Name() string { return "duplicate" }

// Apply implements Operator.
func (OpDuplicate) Apply(g *Gen, p *Prog, ctx *MutateCtx) bool {
	if len(p.Calls) == 0 || len(p.Calls) >= ctx.maxCalls()+4 {
		return false
	}
	src := p.Calls[g.R.Intn(len(p.Calls))]
	nc := &Call{Sc: src.Sc, Args: make([]*Value, len(src.Args))}
	for i, a := range src.Args {
		nc.Args[i] = a.clone()
	}
	p.Calls = append(p.Calls, nc)
	return true
}

// OpSplice is corpus crossover: it keeps a random prefix of the
// program and grafts a random suffix of a donor seed onto it.
// Resource references inside the grafted suffix are rebased; those
// pointing into the donor's discarded prefix are rewired to a
// compatible producer in the spliced program, or degraded to the
// bad-fd sentinel when none exists.
type OpSplice struct{}

// Name implements Operator.
func (OpSplice) Name() string { return "splice" }

// Apply implements Operator.
func (OpSplice) Apply(g *Gen, p *Prog, ctx *MutateCtx) bool {
	if ctx == nil || ctx.Donor == nil || len(p.Calls) == 0 {
		return false
	}
	donor := ctx.Donor()
	if donor == nil || len(donor.Calls) == 0 {
		return false
	}
	graft := donor.Clone()
	j := 1 + g.R.Intn(len(p.Calls)) // keep p.Calls[:j]
	k := g.R.Intn(len(graft.Calls)) // graft donor.Calls[k:]
	max := ctx.maxCalls() + 4
	if j == len(p.Calls) && j >= max {
		// Keep-everything cut on a size-capped program: nothing would
		// be truncated and nothing can be grafted.
		return false
	}
	p.Calls = p.Calls[:j]
	for di := k; di < len(graft.Calls) && len(p.Calls) < max; di++ {
		c := graft.Calls[di]
		at := len(p.Calls)
		c.ForEachValue(func(v *Value) {
			if v.Type.Kind != KindResource || v.ResultOf < 0 {
				return
			}
			if v.ResultOf >= k {
				v.ResultOf = v.ResultOf - k + j
				return
			}
			// Reference into the donor's discarded prefix: rewire into
			// the spliced program or degrade to bad fd.
			v.ResultOf = g.findCompatible(p, at, v.Type.Res, nil)
		})
		p.Calls = append(p.Calls, c)
	}
	return true
}

// interestingValues are the boundary constants OpConstants injects:
// zeros, small counts, sign/width boundaries, page- and mask-shaped
// values — the integers range-gated kernel paths actually compare
// against.
var interestingValues = []uint64{
	0, 1, 7, 8, 16, 63, 64, 127, 128, 255, 256, 511, 512,
	1023, 1024, 4095, 4096, 0x7fff, 0x8000, 0xffff, 0x10000,
	1 << 20, 1<<20 + 1, 0x7fffffff, 0x80000000, 0xffffffff,
	1 << 32, 1 << 48, 1<<63 - 1, 1 << 63, ^uint64(0),
}

// OpConstants replaces one integer (or flags) value with an
// interesting boundary constant; ranged integers also probe their
// declared Min/Max edges and the first out-of-range values.
type OpConstants struct{}

// Name implements Operator.
func (OpConstants) Name() string { return "constants" }

// Apply implements Operator.
func (OpConstants) Apply(g *Gen, p *Prog, _ *MutateCtx) bool {
	refs := collectValues(p, func(v *Value) bool {
		return v.Type.Kind == KindInt || v.Type.Kind == KindFlags
	})
	if len(refs) == 0 {
		return false
	}
	v := refs[g.R.Intn(len(refs))].v
	switch {
	case v.Type.Kind == KindFlags && len(v.Type.Vals) > 0:
		switch g.R.Intn(3) {
		case 0: // combine two declared values
			a := v.Type.Vals[g.R.Intn(len(v.Type.Vals))]
			b := v.Type.Vals[g.R.Intn(len(v.Type.Vals))]
			v.Scalar = a | b
		case 1: // clear
			v.Scalar = 0
		case 2: // boundary constant in a flags slot
			v.Scalar = interestingValues[g.R.Intn(len(interestingValues))]
		}
	case v.Type.Ranged:
		edges := []uint64{
			uint64(v.Type.Min), uint64(v.Type.Max),
			uint64(v.Type.Min) - 1, uint64(v.Type.Max) + 1,
			interestingValues[g.R.Intn(len(interestingValues))],
		}
		v.Scalar = edges[g.R.Intn(len(edges))]
	default:
		v.Scalar = interestingValues[g.R.Intn(len(interestingValues))]
	}
	return true
}

// OpShuffle rotates a contiguous block of calls, reordering the
// operation sequence while keeping resource references valid:
// references that would point forward after the rotation are rewired
// to a compatible earlier producer or degraded to the bad-fd
// sentinel. Reordering probes ordering-sensitive handler state
// (issue-before-setup, teardown-before-use).
type OpShuffle struct{}

// Name implements Operator.
func (OpShuffle) Name() string { return "shuffle" }

// Apply implements Operator.
func (OpShuffle) Apply(g *Gen, p *Prog, _ *MutateCtx) bool {
	n := len(p.Calls)
	if n < 3 {
		return false
	}
	a := g.R.Intn(n - 1)        // segment start
	size := 2 + g.R.Intn(n-a-1) // segment [a, a+size), size >= 2
	b := a + size
	m := 1 + g.R.Intn(size-1) // left-rotation amount
	// perm maps old index -> new index.
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	rotated := make([]*Call, size)
	for i := 0; i < size; i++ {
		ni := a + ((i-m)%size+size)%size
		perm[a+i] = ni
		rotated[ni-a] = p.Calls[a+i]
	}
	copy(p.Calls[a:b], rotated)
	// Remap references through the permutation; any reference the
	// rotation made forward-pointing is rewired or degraded.
	for ni, c := range p.Calls {
		idx := ni
		c.ForEachValue(func(v *Value) {
			if v.Type.Kind != KindResource || v.ResultOf < 0 {
				return
			}
			nr := perm[v.ResultOf]
			if nr >= idx {
				displaced := nr
				nr = g.findCompatible(p, idx, v.Type.Res, func(i int) bool { return i == displaced })
			}
			v.ResultOf = nr
		})
	}
	return true
}

// valueRef locates one value inside a program.
type valueRef struct {
	call int
	v    *Value
}

// collectValues gathers every value matching pred, tagged with its
// call index (mutation sites need the index to bound resource
// binding).
func collectValues(p *Prog, pred func(*Value) bool) []valueRef {
	var out []valueRef
	for i, c := range p.Calls {
		c.ForEachValue(func(v *Value) {
			if pred(v) {
				out = append(out, valueRef{call: i, v: v})
			}
		})
	}
	return out
}

// findCompatible returns the index of a random call before limit
// whose result satisfies res, or -1 — the bad-fd sentinel — when
// none exists. skip, when non-nil, filters out candidate indices
// (the rotation's displaced producer, a removal's dropped set).
func (g *Gen) findCompatible(p *Prog, limit int, res string, skip func(int) bool) int {
	var candidates []int
	for i := 0; i < limit && i < len(p.Calls); i++ {
		if skip != nil && skip(i) {
			continue
		}
		if ret := p.Calls[i].Sc.Ret; ret != "" && g.T.compatible(ret, res) {
			candidates = append(candidates, i)
		}
	}
	if len(candidates) == 0 {
		return -1
	}
	return candidates[g.R.Intn(len(candidates))]
}
