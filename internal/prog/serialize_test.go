package prog

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSerializeRoundTrip(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 21)
	for i := 0; i < 100; i++ {
		p := g.Generate(6)
		text := p.Serialize()
		q, err := Deserialize(tgt, text)
		if err != nil {
			t.Fatalf("deserialize failed: %v\n%s", err, text)
		}
		if q.Serialize() != text {
			t.Fatalf("round trip differs:\n--- a\n%s\n--- b\n%s", text, q.Serialize())
		}
	}
}

func TestSerializeEncodingEquivalence(t *testing.T) {
	// The deserialized program must encode to the same bytes (the
	// repro must behave identically in the kernel).
	tgt := testTarget(t)
	g := NewGen(tgt, 22)
	for i := 0; i < 50; i++ {
		p := g.Generate(6)
		q, err := Deserialize(tgt, p.Serialize())
		if err != nil {
			t.Fatal(err)
		}
		if len(q.Calls) != len(p.Calls) {
			t.Fatal("call count changed")
		}
		for ci := range p.Calls {
			for ai := range p.Calls[ci].Args {
				a, b := p.Calls[ci].Args[ai], q.Calls[ci].Args[ai]
				if a.Type.Kind == KindPtr && a.Ptr != nil {
					if string(a.Ptr.Encode()) != string(b.Ptr.Encode()) {
						t.Fatalf("payload bytes differ for call %d arg %d", ci, ai)
					}
				}
			}
		}
	}
}

func TestDeserializeRejectsUnknownSyscall(t *testing.T) {
	tgt := testTarget(t)
	if _, err := Deserialize(tgt, "frob$x(0x1)\n"); err == nil {
		t.Fatal("unknown syscall accepted")
	}
}

// TestDeserializeRejectsOutOfRangeReferences: rN with N >= the number
// of earlier calls (forward or self references) must be rejected at
// parse time, with the offending line number in the error — not
// deferred to a lineless Validate failure.
func TestDeserializeRejectsOutOfRangeReferences(t *testing.T) {
	tgt := testTarget(t)
	cases := []struct {
		name, text, wantLine string
	}{
		{
			name:     "forward ref in first call",
			text:     "ioctl$SET_CFG(r5, 0x7002, 0x0)\n",
			wantLine: "line 1",
		},
		{
			name: "forward ref in later call",
			text: "r0 = openat$dev(0xffffff9c, &\"/dev/testdev\", 0x2, 0x0)\n" +
				"ioctl$SET_CFG(r2, 0x7002, 0x0)\n",
			wantLine: "line 2",
		},
		{
			name: "self ref",
			text: "r0 = openat$dev(0xffffff9c, &\"/dev/testdev\", 0x2, 0x0)\n" +
				"ioctl$SET_CFG(r1, 0x7002, 0x0)\n",
			wantLine: "line 2",
		},
		{
			name:     "negative-style ref",
			text:     "ioctl$SET_CFG(r-1, 0x7002, 0x0)\n",
			wantLine: "line 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Deserialize(tgt, tc.text)
			if err == nil {
				t.Fatalf("accepted:\n%s", tc.text)
			}
			if !strings.Contains(err.Error(), tc.wantLine) {
				t.Fatalf("error %q does not name %s", err, tc.wantLine)
			}
		})
	}
}

func TestDeserializeComments(t *testing.T) {
	tgt := testTarget(t)
	text := `# repro for test
r0 = openat$dev(0xffffff9c, &"/dev/testdev", 0x2, 0x0)

ioctl$MAKE_SUB(r0, 0x7001)
`
	p, err := Deserialize(tgt, text)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Calls) != 2 {
		t.Fatalf("want 2 calls, got %d", len(p.Calls))
	}
}

func TestDeserializeBadFdSentinel(t *testing.T) {
	tgt := testTarget(t)
	text := "ioctl$MAKE_SUB(0xffffffffffffffff, 0x7001)\n"
	p, err := Deserialize(tgt, text)
	if err != nil {
		t.Fatal(err)
	}
	if p.Calls[0].Args[0].ResultOf != -1 {
		t.Fatal("bad-fd sentinel not preserved")
	}
}

func TestQuickSerializeRoundTrip(t *testing.T) {
	tgt := testTarget(t)
	f := func(seed int64) bool {
		g := NewGen(tgt, seed)
		p := g.Generate(5)
		for i := 0; i < 3; i++ {
			p = g.Mutate(p, 6)
		}
		q, err := Deserialize(tgt, p.Serialize())
		return err == nil && q.Serialize() == p.Serialize()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeMarksResults(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 23)
	g.Enabled = map[string]bool{"openat$dev": true, "ioctl$SET_CFG": true}
	for i := 0; i < 50; i++ {
		p := g.Generate(4)
		text := p.Serialize()
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "r") && !strings.Contains(line, " = ") {
				t.Fatalf("malformed result line: %q", line)
			}
		}
	}
}
