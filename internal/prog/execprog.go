package prog

// ExecProg is the compiled, flat form of a Prog: one contiguous
// instruction array whose argument scalars are pre-evaluated, pointer
// payloads pre-encoded into a shared byte arena, and resource
// references lowered to plain indices into the executor's register
// file (the per-call fd table). Executors interpret it without
// touching the rich Value tree — no per-exec argument re-evaluation,
// no per-exec encoding, no allocation.
//
// An ExecProg is immutable between compilations. CompileExecInto
// recompiles in place, reusing the arenas, so a fuzzing loop can hold
// one ExecProg as scratch and compile every candidate into it; Gen()
// changes on every recompilation so executor-side caches (Cache) can
// detect staleness. An ExecProg and its cache are owned by one
// executor at a time — do not share one instance across concurrently
// running VMs.
type ExecProg struct {
	// Calls is the flat instruction stream, one entry per syscall.
	Calls []ExecCall
	// args and blob are the backing arenas; ExecCall.Args, ExecArg.Blob
	// and ExecCall.Path are subslices fixed up after the build (the
	// arenas may reallocate while compilation appends).
	args []ExecArg
	blob []byte
	gen  uint64
	// cache is the executor-owned resolution slot (see Cache).
	cache any
}

// ExecCall is one compiled syscall invocation.
type ExecCall struct {
	// Sc is the syscall descriptor (dispatch identity).
	Sc *Syscall
	// Args are the lowered arguments, a subslice of the program arena.
	Args []ExecArg
	// Path is the call's device-path bytes: the data of the first
	// pointer argument whose pointee is a non-empty string or buffer
	// (what the kernel's open dispatch matches on). Nil when the call
	// carries no such argument.
	Path []byte

	argOff, argN     int32
	pathOff, pathLen int32
}

// ExecArg is one lowered argument. Every field is pre-evaluated at
// compile time; executors read them directly.
type ExecArg struct {
	// Scalar is the argument's immediate value (Value.Scalar).
	Scalar uint64
	// Res is the register-file index of the producing call for
	// resource arguments (Value.ResultOf); -1 when the argument is not
	// a resource or carries no binding.
	Res int32
	// Blob is the pre-encoded pointee payload for pointer arguments
	// (a subslice of the program arena); nil when the argument is not
	// a pointer or points nowhere.
	Blob []byte

	blobOff, blobLen int32
}

// CompileExec lowers a validated program into a fresh ExecProg.
func CompileExec(p *Prog) *ExecProg {
	ep := &ExecProg{}
	CompileExecInto(p, ep)
	return ep
}

// CompileExecInto lowers p into ep, reusing ep's arenas. Any previous
// contents (and any executor cache keyed to the previous generation)
// are invalidated.
func CompileExecInto(p *Prog, ep *ExecProg) {
	ep.Calls = ep.Calls[:0]
	ep.args = ep.args[:0]
	ep.blob = ep.blob[:0]
	ep.gen++
	for _, c := range p.Calls {
		ec := ExecCall{Sc: c.Sc, argOff: int32(len(ep.args)), pathOff: -1}
		for _, a := range c.Args {
			ea := ExecArg{Res: -1, blobOff: -1}
			if a != nil {
				ea.Scalar = a.Scalar
				if a.Type.Kind == KindResource {
					ea.Res = int32(a.ResultOf)
				}
				if a.Type.Kind == KindPtr && a.Ptr != nil {
					off := len(ep.blob)
					ep.blob = a.Ptr.encodeTo(ep.blob)
					ea.blobOff, ea.blobLen = int32(off), int32(len(ep.blob)-off)
					// The open path is the first non-empty string/buffer
					// pointee, matching the interpreter's scan order.
					if ec.pathOff < 0 && (a.Ptr.Type.Kind == KindString || a.Ptr.Type.Kind == KindBuffer) && len(a.Ptr.Data) > 0 {
						po := len(ep.blob)
						ep.blob = append(ep.blob, a.Ptr.Data...)
						ec.pathOff, ec.pathLen = int32(po), int32(len(a.Ptr.Data))
					}
				}
			}
			ep.args = append(ep.args, ea)
		}
		ec.argN = int32(len(ep.args)) - ec.argOff
		ep.Calls = append(ep.Calls, ec)
	}
	// The arenas are final; materialize the subslice views.
	for i := range ep.Calls {
		ec := &ep.Calls[i]
		ec.Args = ep.args[ec.argOff : ec.argOff+ec.argN : ec.argOff+ec.argN]
		if ec.pathOff >= 0 {
			ec.Path = ep.blob[ec.pathOff : ec.pathOff+ec.pathLen : ec.pathOff+ec.pathLen]
		} else {
			ec.Path = nil
		}
		for j := range ec.Args {
			ea := &ec.Args[j]
			if ea.blobOff >= 0 {
				ea.Blob = ep.blob[ea.blobOff : ea.blobOff+ea.blobLen : ea.blobOff+ea.blobLen]
			} else {
				ea.Blob = nil
			}
		}
	}
}

// Gen is the compilation generation counter: it changes every time
// the ExecProg is recompiled, invalidating executor caches.
func (ep *ExecProg) Gen() uint64 { return ep.gen }

// Cache returns the executor-owned resolution cache previously stored
// with SetCache, or nil. The slot lets an executor pre-resolve the
// program against its own dispatch tables once and reuse the result
// across runs; executors must validate the cached value against Gen()
// (and their own identity) before trusting it.
func (ep *ExecProg) Cache() any { return ep.cache }

// SetCache stores an executor-owned resolution cache on the program.
func (ep *ExecProg) SetCache(v any) { ep.cache = v }
