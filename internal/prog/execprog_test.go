package prog

import (
	"bytes"
	"testing"
)

// execTestProg hand-builds a program exercising every lowering case:
// scalar args, bound and unbound resources, encoded pointer payloads,
// and a device-path string.
func execTestProg() *Prog {
	intT := &Type{Kind: KindInt, Bytes: 8}
	int4T := &Type{Kind: KindInt, Bytes: 4}
	resT := &Type{Kind: KindResource}
	strT := &Type{Kind: KindString}
	ptrT := &Type{Kind: KindPtr}
	structT := &Type{Kind: KindStruct}
	payload := &Value{Type: structT, Fields: []*Value{
		{Type: int4T, Scalar: 0x11223344},
		{Type: intT, Scalar: 0xdeadbeefcafef00d},
	}}
	return &Prog{Calls: []*Call{
		{Sc: &Syscall{Name: "openat$dm", CallName: "openat"}, Args: []*Value{
			{Type: intT, Scalar: 0xffffffffffffff9c},
			{Type: ptrT, Ptr: &Value{Type: strT, Data: []byte("/dev/mapper/control")}},
			{Type: intT, Scalar: 2},
		}},
		{Sc: &Syscall{Name: "ioctl$DM_X", CallName: "ioctl"}, Args: []*Value{
			{Type: resT, ResultOf: 0},
			{Type: intT, Scalar: 0xc138fd00},
			{Type: ptrT, Ptr: payload},
		}},
		{Sc: &Syscall{Name: "close", CallName: "close"}, Args: []*Value{
			{Type: resT, ResultOf: -1},
		}},
	}}
}

func TestCompileExecLowering(t *testing.T) {
	p := execTestProg()
	ep := CompileExec(p)
	if len(ep.Calls) != len(p.Calls) {
		t.Fatalf("call count: got %d want %d", len(ep.Calls), len(p.Calls))
	}
	open := ep.Calls[0]
	if open.Sc != p.Calls[0].Sc {
		t.Fatal("syscall descriptor not preserved")
	}
	if got := open.Args[0].Scalar; got != 0xffffffffffffff9c {
		t.Fatalf("scalar arg: got %#x", got)
	}
	if open.Args[0].Res != -1 || open.Args[2].Res != -1 {
		t.Fatal("non-resource args must lower to Res=-1")
	}
	if string(open.Path) != "/dev/mapper/control" {
		t.Fatalf("path: got %q", open.Path)
	}
	if want := p.Calls[0].Args[1].Ptr.Encode(); !bytes.Equal(open.Args[1].Blob, want) {
		t.Fatalf("path blob: got %x want %x", open.Args[1].Blob, want)
	}
	ioctl := ep.Calls[1]
	if ioctl.Args[0].Res != 0 {
		t.Fatalf("resource binding: got %d want 0", ioctl.Args[0].Res)
	}
	if ioctl.Path != nil {
		t.Fatal("ioctl carries no string pointee, Path must be nil")
	}
	if want := p.Calls[1].Args[2].Ptr.Encode(); !bytes.Equal(ioctl.Args[2].Blob, want) {
		t.Fatalf("payload blob: got %x want %x", ioctl.Args[2].Blob, want)
	}
	if ep.Calls[2].Args[0].Res != -1 {
		t.Fatal("unbound resource must lower to Res=-1")
	}
}

func TestCompileExecIntoReusesArenas(t *testing.T) {
	p := execTestProg()
	var ep ExecProg
	CompileExecInto(p, &ep)
	g1 := ep.Gen()
	ep.SetCache("resolved")
	// Capture arena capacities, then recompile: the second compilation
	// must not grow them and must bump the generation (so executors
	// invalidate the cache themselves).
	callCap, argCap, blobCap := cap(ep.Calls), cap(ep.args), cap(ep.blob)
	first := CompileExec(p)
	CompileExecInto(p, &ep)
	if ep.Gen() <= g1 {
		t.Fatalf("generation must advance: %d -> %d", g1, ep.Gen())
	}
	if ep.Cache() != "resolved" {
		t.Fatal("cache slot is executor-owned and must survive recompilation")
	}
	if cap(ep.Calls) != callCap || cap(ep.args) != argCap || cap(ep.blob) != blobCap {
		t.Fatal("recompiling the same program must reuse the arenas")
	}
	// And the recompiled contents must match a fresh compilation.
	for i := range first.Calls {
		a, b := first.Calls[i], ep.Calls[i]
		if !bytes.Equal(a.Path, b.Path) || len(a.Args) != len(b.Args) {
			t.Fatalf("call %d diverged after recompilation", i)
		}
		for j := range a.Args {
			if a.Args[j].Scalar != b.Args[j].Scalar || a.Args[j].Res != b.Args[j].Res ||
				!bytes.Equal(a.Args[j].Blob, b.Args[j].Blob) {
				t.Fatalf("call %d arg %d diverged after recompilation", i, j)
			}
		}
	}
}

func TestCompileExecNilAndEmpty(t *testing.T) {
	ep := CompileExec(&Prog{})
	if len(ep.Calls) != 0 {
		t.Fatal("empty program must compile to no instructions")
	}
	// Nil argument slots (absent optional args) lower to inert args.
	p := &Prog{Calls: []*Call{{
		Sc:   &Syscall{Name: "close", CallName: "close"},
		Args: []*Value{nil},
	}}}
	ep = CompileExec(p)
	a := ep.Calls[0].Args[0]
	if a.Scalar != 0 || a.Res != -1 || a.Blob != nil {
		t.Fatalf("nil arg must lower to zero/none: %+v", a)
	}
}
