package prog

import (
	"fmt"
	"strconv"
	"strings"
)

// Program text serialization, in the spirit of Syzkaller's repro
// format: one call per line,
//
//	r0 = openat$dm(0xffffff9c, &"/dev/mapper/control", 0x2, 0x0)
//	ioctl$DM_LIST_VERSIONS(r0, 0xc0c0fd0d, &{0x0, 0xffffffff, ...})
//
// Serialize/Deserialize round-trip exactly, which lets crash repros
// travel between the fuzzer, files on disk, and the syzfuzz -repro
// flag.

// Serialize renders the program as repro text.
func (p *Prog) Serialize() string {
	var b strings.Builder
	for i, c := range p.Calls {
		if c.Sc.Ret != "" {
			fmt.Fprintf(&b, "r%d = ", i)
		}
		b.WriteString(c.Sc.Name)
		b.WriteByte('(')
		for j, a := range c.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			serializeValue(&b, a)
		}
		b.WriteString(")\n")
	}
	return b.String()
}

func serializeValue(b *strings.Builder, v *Value) {
	if v == nil {
		b.WriteString("nil")
		return
	}
	switch v.Type.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		fmt.Fprintf(b, "0x%x", v.Scalar)
	case KindResource:
		if v.ResultOf >= 0 {
			fmt.Fprintf(b, "r%d", v.ResultOf)
		} else {
			b.WriteString("0xffffffffffffffff")
		}
	case KindString:
		fmt.Fprintf(b, "%q", string(v.Data))
	case KindBuffer:
		fmt.Fprintf(b, "#%s#", hexBytes(v.Data))
	case KindPtr:
		if v.Ptr == nil {
			b.WriteString("0x0")
			return
		}
		b.WriteByte('&')
		serializeValue(b, v.Ptr)
	case KindStruct:
		b.WriteByte('{')
		for i, f := range v.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			serializeValue(b, f)
		}
		b.WriteByte('}')
	case KindUnion:
		fmt.Fprintf(b, "@%d{", v.UnionIdx)
		if len(v.Fields) > 0 {
			serializeValue(b, v.Fields[0])
		}
		b.WriteByte('}')
	case KindArray:
		b.WriteByte('[')
		for i, f := range v.Fields {
			if i > 0 {
				b.WriteString(", ")
			}
			serializeValue(b, f)
		}
		b.WriteByte(']')
	default:
		b.WriteString("?")
	}
}

func hexBytes(data []byte) string {
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 0, len(data)*2)
	for _, c := range data {
		out = append(out, hexdigits[c>>4], hexdigits[c&0xf])
	}
	return string(out)
}

// Deserialize parses repro text back into a program against the
// target. Unknown syscalls or malformed values are errors (a repro is
// useless if reinterpreted loosely).
func Deserialize(t *Target, text string) (*Prog, error) {
	p := &Prog{}
	for lineNo, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		call, err := parseCallLine(t, p, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo+1, err)
		}
		p.Calls = append(p.Calls, call)
	}
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	return p, nil
}

func parseCallLine(t *Target, p *Prog, line string) (*Call, error) {
	// Optional "rN = " prefix.
	if eq := strings.Index(line, " = "); eq > 0 && strings.HasPrefix(line, "r") {
		idxText := line[1:eq]
		if n, err := strconv.Atoi(idxText); err == nil {
			if n != len(p.Calls) {
				return nil, fmt.Errorf("result index r%d out of order (expected r%d)", n, len(p.Calls))
			}
			line = line[eq+3:]
		}
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("malformed call %q", line)
	}
	name := strings.TrimSpace(line[:open])
	sc := t.ByName[name]
	if sc == nil {
		return nil, fmt.Errorf("unknown syscall %q", name)
	}
	d := &deserializer{src: line[open+1 : len(line)-1], calls: len(p.Calls)}
	call := &Call{Sc: sc}
	for i, f := range sc.Args {
		if i > 0 {
			if err := d.expect(','); err != nil {
				return nil, err
			}
		}
		v, err := d.value(f.Type)
		if err != nil {
			return nil, fmt.Errorf("arg %s: %w", f.Name, err)
		}
		call.Args = append(call.Args, v)
	}
	d.skipSpace()
	if d.i < len(d.src) {
		return nil, fmt.Errorf("trailing garbage %q", d.src[d.i:])
	}
	return call, nil
}

type deserializer struct {
	src string
	i   int
	// calls is the number of calls parsed before this line; a
	// resource reference rN is only valid for N < calls.
	calls int
}

func (d *deserializer) skipSpace() {
	for d.i < len(d.src) && (d.src[d.i] == ' ' || d.src[d.i] == '\t') {
		d.i++
	}
}

func (d *deserializer) expect(c byte) error {
	d.skipSpace()
	if d.i >= len(d.src) || d.src[d.i] != c {
		return fmt.Errorf("expected %q at %q", string(c), d.rest())
	}
	d.i++
	return nil
}

func (d *deserializer) rest() string {
	if d.i >= len(d.src) {
		return "<eol>"
	}
	r := d.src[d.i:]
	if len(r) > 24 {
		r = r[:24] + "..."
	}
	return r
}

func (d *deserializer) value(ty *Type) (*Value, error) {
	d.skipSpace()
	v := &Value{Type: ty, ResultOf: -1}
	switch ty.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		n, err := d.number()
		if err != nil {
			return nil, err
		}
		v.Scalar = n
		return v, nil
	case KindResource:
		if d.i < len(d.src) && d.src[d.i] == 'r' {
			d.i++
			n, err := d.number()
			if err != nil {
				return nil, err
			}
			// Reject forward and self references at parse time: a
			// resource can only use the result of an earlier call.
			// (number() already rejects negative-style refs like r-1.)
			if n >= uint64(d.calls) {
				return nil, fmt.Errorf("resource reference r%d out of range (only %d earlier calls)", n, d.calls)
			}
			v.ResultOf = int(n)
			return v, nil
		}
		if _, err := d.number(); err != nil {
			return nil, err
		}
		return v, nil // bad-fd sentinel
	case KindString:
		s, err := d.quoted()
		if err != nil {
			return nil, err
		}
		v.Data = []byte(s)
		return v, nil
	case KindBuffer:
		data, err := d.hexBlob()
		if err != nil {
			return nil, err
		}
		v.Data = data
		return v, nil
	case KindPtr:
		if d.i < len(d.src) && d.src[d.i] == '0' {
			if _, err := d.number(); err != nil {
				return nil, err
			}
			return v, nil // NULL
		}
		if err := d.expect('&'); err != nil {
			return nil, err
		}
		inner, err := d.value(ty.Elem)
		if err != nil {
			return nil, err
		}
		v.Ptr = inner
		return v, nil
	case KindStruct:
		if err := d.expect('{'); err != nil {
			return nil, err
		}
		for i := range ty.Fields {
			if i > 0 {
				if err := d.expect(','); err != nil {
					return nil, err
				}
			}
			f, err := d.value(ty.Fields[i].Type)
			if err != nil {
				return nil, err
			}
			v.Fields = append(v.Fields, f)
		}
		return v, d.expect('}')
	case KindUnion:
		if err := d.expect('@'); err != nil {
			return nil, err
		}
		idx, err := d.number()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(ty.Fields) {
			return nil, fmt.Errorf("union index %d out of range", idx)
		}
		v.UnionIdx = int(idx)
		if err := d.expect('{'); err != nil {
			return nil, err
		}
		f, err := d.value(ty.Fields[v.UnionIdx].Type)
		if err != nil {
			return nil, err
		}
		v.Fields = []*Value{f}
		return v, d.expect('}')
	case KindArray:
		if err := d.expect('['); err != nil {
			return nil, err
		}
		d.skipSpace()
		for d.i < len(d.src) && d.src[d.i] != ']' {
			if len(v.Fields) > 0 {
				if err := d.expect(','); err != nil {
					return nil, err
				}
			}
			f, err := d.value(ty.Elem)
			if err != nil {
				return nil, err
			}
			v.Fields = append(v.Fields, f)
			d.skipSpace()
		}
		return v, d.expect(']')
	}
	return nil, fmt.Errorf("unsupported type %v", ty)
}

func (d *deserializer) number() (uint64, error) {
	d.skipSpace()
	start := d.i
	if strings.HasPrefix(d.src[d.i:], "0x") {
		d.i += 2
		for d.i < len(d.src) && isHex(d.src[d.i]) {
			d.i++
		}
		v, err := strconv.ParseUint(d.src[start+2:d.i], 16, 64)
		return v, err
	}
	for d.i < len(d.src) && d.src[d.i] >= '0' && d.src[d.i] <= '9' {
		d.i++
	}
	if d.i == start {
		return 0, fmt.Errorf("expected number at %q", d.rest())
	}
	return strconv.ParseUint(d.src[start:d.i], 10, 64)
}

func isHex(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (d *deserializer) quoted() (string, error) {
	d.skipSpace()
	if d.i >= len(d.src) || d.src[d.i] != '"' {
		return "", fmt.Errorf("expected string at %q", d.rest())
	}
	end := d.i + 1
	for end < len(d.src) {
		if d.src[end] == '\\' {
			end += 2
			continue
		}
		if d.src[end] == '"' {
			break
		}
		end++
	}
	if end >= len(d.src) {
		return "", fmt.Errorf("unterminated string")
	}
	s, err := strconv.Unquote(d.src[d.i : end+1])
	if err != nil {
		return "", err
	}
	d.i = end + 1
	return s, nil
}

func (d *deserializer) hexBlob() ([]byte, error) {
	if err := d.expect('#'); err != nil {
		return nil, err
	}
	start := d.i
	for d.i < len(d.src) && isHex(d.src[d.i]) {
		d.i++
	}
	hexText := d.src[start:d.i]
	if err := d.expect('#'); err != nil {
		return nil, err
	}
	if len(hexText)%2 != 0 {
		return nil, fmt.Errorf("odd hex blob length")
	}
	out := make([]byte, len(hexText)/2)
	for i := 0; i < len(out); i++ {
		hi, lo := unhex(hexText[2*i]), unhex(hexText[2*i+1])
		out[i] = hi<<4 | lo
	}
	return out, nil
}

func unhex(c byte) byte {
	switch {
	case c >= '0' && c <= '9':
		return c - '0'
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10
	default:
		return c - 'A' + 10
	}
}
