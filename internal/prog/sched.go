package prog

import "math/rand"

// Scheduler selects mutation operators with multi-armed-bandit
// weights driven by coverage feedback: each operator's weight is its
// Laplace-smoothed average new-coverage yield, mixed with a uniform
// exploration floor so cold operators keep getting tried. Reward
// history decays periodically, so the schedule tracks the campaign
// phase (growth operators dominate early, value-probing operators
// late) instead of averaging over the whole run.
//
// All randomness flows through the caller's RNG and all state updates
// are in deterministic order, so campaigns using a Scheduler remain
// exactly reproducible from their seed. A Scheduler is not safe for
// concurrent use; campaigns own one each.
type Scheduler struct {
	ops      []Operator
	adaptive bool
	// picks counts selections (lifetime, for reporting); trials and
	// rewards are the decayed bandit state.
	picks   []int
	trials  []float64
	rewards []float64
	// sinceDecay counts rewards since the last halving.
	sinceDecay int
}

// Bandit constants: the smoothing prior (a cold operator is assumed
// to yield priorReward new blocks per priorTrials attempts), the
// uniform exploration floor, and the sliding-window decay period.
const (
	schedPriorReward = 0.5
	schedPriorTrials = 8.0
	schedExplore     = 0.15
	schedDecayEvery  = 1024
)

// NewScheduler returns an adaptive scheduler over the given operators
// (DefaultOperators when none are given).
func NewScheduler(ops ...Operator) *Scheduler {
	return newScheduler(true, ops)
}

// NewUniformScheduler returns a scheduler that ignores feedback and
// picks operators uniformly at random — the ablation baseline.
func NewUniformScheduler(ops ...Operator) *Scheduler {
	return newScheduler(false, ops)
}

func newScheduler(adaptive bool, ops []Operator) *Scheduler {
	if len(ops) == 0 {
		ops = DefaultOperators()
	}
	return &Scheduler{
		ops:      ops,
		adaptive: adaptive,
		picks:    make([]int, len(ops)),
		trials:   make([]float64, len(ops)),
		rewards:  make([]float64, len(ops)),
	}
}

// Ops returns the scheduled operator set in canonical order.
func (s *Scheduler) Ops() []Operator { return s.ops }

// Adaptive reports whether coverage feedback drives selection.
func (s *Scheduler) Adaptive() bool { return s.adaptive }

// Pick selects the next operator index, drawing from r.
func (s *Scheduler) Pick(r *rand.Rand) int {
	var idx int
	if !s.adaptive {
		idx = r.Intn(len(s.ops))
	} else {
		weights, total := s.weights()
		t := r.Float64() * total
		idx = len(s.ops) - 1
		for i, w := range weights {
			if t < w {
				idx = i
				break
			}
			t -= w
		}
	}
	s.picks[idx]++
	return idx
}

// weights returns the unnormalized selection weights and their sum.
func (s *Scheduler) weights() ([]float64, float64) {
	weights := make([]float64, len(s.ops))
	var yieldSum float64
	for i := range s.ops {
		weights[i] = (s.rewards[i] + schedPriorReward) / (s.trials[i] + schedPriorTrials)
		yieldSum += weights[i]
	}
	// Mix in the exploration floor: explore/K uniform mass each, the
	// rest proportional to smoothed yield.
	uniform := yieldSum / float64(len(s.ops))
	var total float64
	for i := range weights {
		weights[i] = schedExplore*uniform + (1-schedExplore)*weights[i]
		total += weights[i]
	}
	return weights, total
}

// Reward credits operator op with the number of new coverage blocks
// its last mutation found (zero is a valid observation: it teaches
// the scheduler the operator is currently dry).
func (s *Scheduler) Reward(op int, newBlocks int) {
	s.trials[op]++
	s.rewards[op] += float64(newBlocks)
	if s.sinceDecay++; s.sinceDecay >= schedDecayEvery {
		s.sinceDecay = 0
		for i := range s.trials {
			s.trials[i] /= 2
			s.rewards[i] /= 2
		}
	}
}

// OperatorStat is one operator's snapshot entry.
type OperatorStat struct {
	// Name is the operator name.
	Name string
	// Picks is the lifetime selection count.
	Picks int
	// Reward is the decayed new-coverage mass credited to the
	// operator.
	Reward float64
	// Weight is the operator's current share of selection probability
	// (sums to 1 across the snapshot).
	Weight float64
}

// Snapshot reports the per-operator scheduler state in canonical
// operator order.
func (s *Scheduler) Snapshot() []OperatorStat {
	weights, total := s.weights()
	out := make([]OperatorStat, len(s.ops))
	for i, op := range s.ops {
		w := 1 / float64(len(s.ops))
		if s.adaptive && total > 0 {
			w = weights[i] / total
		}
		out[i] = OperatorStat{
			Name:   op.Name(),
			Picks:  s.picks[i],
			Reward: s.rewards[i],
			Weight: w,
		}
	}
	return out
}
