package prog

import (
	"fmt"

	"kernelgpt/internal/syzlang"
)

// Compile lowers a validated syzlang file into a Target. The file
// should have passed syzlang.Validate first; Compile reports any
// residual inconsistency as an error rather than panicking, since the
// fuzzer must be robust to generator output (the paper's pipeline
// only fuzzes specs that survived validation).
func Compile(f *syzlang.File, env *syzlang.Env) (*Target, error) {
	c := &compiler{
		env:     env,
		file:    f,
		structs: map[string]*syzlang.StructDef{},
		unions:  map[string]*syzlang.UnionDef{},
		flags:   map[string]*syzlang.FlagsDef{},
		cache:   map[string]*Type{},
	}
	for _, s := range f.Structs {
		c.structs[s.Name] = s
	}
	for _, u := range f.Unions {
		c.unions[u.Name] = u
	}
	for _, fl := range f.Flags {
		c.flags[fl.Name] = fl
	}
	t := &Target{
		ByName:    map[string]*Syscall{},
		Resources: map[string]*ResourceDesc{},
		creators:  map[string][]int{},
		consumers: map[string][]int{},
	}
	for _, r := range f.Resources {
		t.Resources[r.Name] = &ResourceDesc{Name: r.Name, Base: r.Base}
	}
	c.target = t
	for _, s := range f.Syscalls {
		sc := &Syscall{Name: s.Name(), CallName: s.CallName, Ret: s.Ret, ID: len(t.Syscalls)}
		for _, a := range s.Args {
			ty, err := c.compileType(a.Type, a.Attrs)
			if err != nil {
				return nil, fmt.Errorf("syscall %s arg %s: %w", sc.Name, a.Name, err)
			}
			sc.Args = append(sc.Args, Field{Name: a.Name, Type: ty})
		}
		if _, dup := t.ByName[sc.Name]; dup {
			return nil, fmt.Errorf("duplicate syscall %s", sc.Name)
		}
		t.Syscalls = append(t.Syscalls, sc)
		t.ByName[sc.Name] = sc
		for _, a := range sc.Args {
			if a.Type.Kind == KindResource {
				t.consumers[a.Type.Res] = append(t.consumers[a.Type.Res], sc.ID)
			}
		}
		if s.Ret != "" {
			// Register as creator for the resource and all its bases.
			for cur := s.Ret; cur != ""; {
				t.creators[cur] = append(t.creators[cur], sc.ID)
				r := t.Resources[cur]
				if r == nil {
					break
				}
				cur = r.Base
			}
		}
	}
	return t, nil
}

type compiler struct {
	env     *syzlang.Env
	file    *syzlang.File
	target  *Target
	structs map[string]*syzlang.StructDef
	unions  map[string]*syzlang.UnionDef
	flags   map[string]*syzlang.FlagsDef
	cache   map[string]*Type
	depth   int
}

const maxCompileDepth = 40

var intBytes = map[string]int{
	"int8": 1, "int16": 2, "int32": 4, "int64": 8, "intptr": 8, "bool8": 1,
}

func (c *compiler) compileType(te *syzlang.TypeExpr, attrs []string) (*Type, error) {
	if c.depth++; c.depth > maxCompileDepth {
		return nil, fmt.Errorf("type nesting too deep at %s", te.Ident)
	}
	defer func() { c.depth-- }()
	ty, err := c.compileType1(te)
	if err != nil {
		return nil, err
	}
	for _, a := range attrs {
		if a == "out" {
			ty.Out = true
		}
	}
	return ty, nil
}

func (c *compiler) compileType1(te *syzlang.TypeExpr) (*Type, error) {
	if n, ok := intBytes[te.Ident]; ok {
		ty := &Type{Kind: KindInt, Bytes: n}
		if len(te.Args) == 1 {
			a := te.Args[0]
			switch {
			case a.HasRange:
				ty.Ranged, ty.Min, ty.Max = true, a.Min, a.Max
			case a.HasInt:
				ty.Kind = KindConst
				ty.Val = a.Int
			case a.Type != nil:
				v, ok := c.constVal(a.Type.Ident)
				if !ok {
					return nil, fmt.Errorf("unknown constant %q", a.Type.Ident)
				}
				ty.Kind = KindConst
				ty.Val = v
			}
		}
		return ty, nil
	}
	switch te.Ident {
	case "fd", "pid":
		return &Type{Kind: KindInt, Bytes: 4}, nil
	case "filename":
		return &Type{Kind: KindString}, nil
	case "void":
		return &Type{Kind: KindBuffer}, nil
	case "const":
		return c.compileConst(te)
	case "flags":
		return c.compileFlags(te)
	case "ptr":
		return c.compilePtr(te)
	case "array":
		return c.compileArray(te)
	case "string":
		ty := &Type{Kind: KindString}
		if len(te.Args) == 1 && te.Args[0].HasStr {
			ty.Str = te.Args[0].Str
		}
		return ty, nil
	case "len", "bytesize":
		return c.compileLen(te)
	case "buffer":
		ty := &Type{Kind: KindBuffer}
		if len(te.Args) == 1 && te.Args[0].Type != nil {
			ty.Dir = parseDir(te.Args[0].Type.Ident)
		}
		return ty, nil
	case "vma":
		return &Type{Kind: KindInt, Bytes: 8}, nil
	}
	// Resource, struct, or union reference.
	if _, ok := c.target.Resources[te.Ident]; ok {
		return &Type{Kind: KindResource, Res: te.Ident, Bytes: 4}, nil
	}
	if key := "s:" + te.Ident; true {
		if cached, ok := c.cache[key]; ok {
			return cached, nil
		}
	}
	if st, ok := c.structs[te.Ident]; ok {
		return c.compileStruct(st)
	}
	if u, ok := c.unions[te.Ident]; ok {
		return c.compileUnion(u)
	}
	return nil, fmt.Errorf("undefined type %q", te.Ident)
}

func (c *compiler) constVal(name string) (uint64, bool) {
	v, ok := c.env.Consts[name]
	return v, ok
}

func (c *compiler) compileConst(te *syzlang.TypeExpr) (*Type, error) {
	if len(te.Args) < 1 {
		return nil, fmt.Errorf("const needs a value")
	}
	ty := &Type{Kind: KindConst, Bytes: 4}
	a := te.Args[0]
	switch {
	case a.HasInt:
		ty.Val = a.Int
	case a.Type != nil:
		v, ok := c.constVal(a.Type.Ident)
		if !ok {
			return nil, fmt.Errorf("unknown constant %q", a.Type.Ident)
		}
		ty.Val = v
	default:
		return nil, fmt.Errorf("bad const value")
	}
	if len(te.Args) == 2 && te.Args[1].Type != nil {
		if n, ok := intBytes[te.Args[1].Type.Ident]; ok {
			ty.Bytes = n
		}
	}
	// Command values exceeding 32 bits of meaning still travel as the
	// syscall's natural word; widen consts that overflow 4 bytes.
	if ty.Val > 0xffffffff && ty.Bytes < 8 {
		ty.Bytes = 8
	}
	return ty, nil
}

func (c *compiler) compileFlags(te *syzlang.TypeExpr) (*Type, error) {
	if len(te.Args) < 1 || te.Args[0].Type == nil {
		return nil, fmt.Errorf("flags needs a set name")
	}
	fl, ok := c.flags[te.Args[0].Type.Ident]
	if !ok {
		return nil, fmt.Errorf("undefined flags set %q", te.Args[0].Type.Ident)
	}
	ty := &Type{Kind: KindFlags, Bytes: 4}
	for _, v := range fl.Values {
		if v.Name != "" {
			cv, ok := c.constVal(v.Name)
			if !ok {
				return nil, fmt.Errorf("unknown constant %q in flags", v.Name)
			}
			ty.Vals = append(ty.Vals, cv)
			continue
		}
		ty.Vals = append(ty.Vals, v.Value)
	}
	if len(te.Args) == 2 && te.Args[1].Type != nil {
		if n, ok := intBytes[te.Args[1].Type.Ident]; ok {
			ty.Bytes = n
		}
	}
	for _, v := range ty.Vals {
		if v > 0xffffffff && ty.Bytes < 8 {
			ty.Bytes = 8
		}
	}
	return ty, nil
}

func (c *compiler) compilePtr(te *syzlang.TypeExpr) (*Type, error) {
	if len(te.Args) != 2 || te.Args[0].Type == nil || te.Args[1].Type == nil {
		return nil, fmt.Errorf("ptr needs direction and element")
	}
	elem, err := c.compileType(te.Args[1].Type, nil)
	if err != nil {
		return nil, err
	}
	return &Type{Kind: KindPtr, Dir: parseDir(te.Args[0].Type.Ident), Elem: elem}, nil
}

func (c *compiler) compileArray(te *syzlang.TypeExpr) (*Type, error) {
	if len(te.Args) < 1 || te.Args[0].Type == nil {
		return nil, fmt.Errorf("array needs an element type")
	}
	elem, err := c.compileType(te.Args[0].Type, nil)
	if err != nil {
		return nil, err
	}
	ty := &Type{Kind: KindArray, Elem: elem, FixedLen: -1}
	if len(te.Args) == 2 {
		a := te.Args[1]
		switch {
		case a.HasInt:
			ty.FixedLen = int(a.Int)
		case a.HasRange:
			// Size range: keep variable but bounded; record in Min/Max.
			ty.Ranged, ty.Min, ty.Max = true, a.Min, a.Max
		}
	}
	return ty, nil
}

func (c *compiler) compileLen(te *syzlang.TypeExpr) (*Type, error) {
	if len(te.Args) != 2 || te.Args[0].Type == nil {
		return nil, fmt.Errorf("len needs target and size")
	}
	ty := &Type{Kind: KindLen, LenTarget: te.Args[0].Type.Ident, Bytes: 4, InBytes: te.Ident == "bytesize"}
	if te.Args[1].Type != nil {
		if n, ok := intBytes[te.Args[1].Type.Ident]; ok {
			ty.Bytes = n
		}
	}
	return ty, nil
}

func (c *compiler) compileStruct(st *syzlang.StructDef) (*Type, error) {
	key := "s:" + st.Name
	ty := &Type{Kind: KindStruct, StructName: st.Name}
	c.cache[key] = ty // pre-register for pointer recursion
	for _, f := range st.Fields {
		ft, err := c.compileType(f.Type, f.Attrs)
		if err != nil {
			delete(c.cache, key)
			return nil, fmt.Errorf("struct %s field %s: %w", st.Name, f.Name, err)
		}
		ty.Fields = append(ty.Fields, Field{Name: f.Name, Type: ft})
	}
	return ty, nil
}

func (c *compiler) compileUnion(u *syzlang.UnionDef) (*Type, error) {
	key := "s:" + u.Name
	ty := &Type{Kind: KindUnion, StructName: u.Name}
	c.cache[key] = ty
	for _, f := range u.Fields {
		ft, err := c.compileType(f.Type, f.Attrs)
		if err != nil {
			delete(c.cache, key)
			return nil, fmt.Errorf("union %s field %s: %w", u.Name, f.Name, err)
		}
		ty.Fields = append(ty.Fields, Field{Name: f.Name, Type: ft})
	}
	return ty, nil
}

func parseDir(s string) Dir {
	switch s {
	case "out":
		return DirOut
	case "inout":
		return DirInOut
	}
	return DirIn
}
