// Package prog is the executable-program layer of the fuzzer: it
// compiles validated syzlang descriptions into typed syscall
// descriptors, generates and mutates syscall programs with resource
// tracking, and encodes pointer payloads into raw bytes using C
// layout rules. The byte encoding is what makes specification quality
// matter in this reproduction: the virtual kernel decodes payload
// fields at its ground-truth offsets, so a generator with the wrong
// struct layout feeds the kernel garbage field values and almost
// never satisfies deep-path conditions.
package prog

import "fmt"

// TypeKind enumerates compiled type categories.
type TypeKind int

// Compiled type kinds.
const (
	KindInt TypeKind = iota
	KindConst
	KindFlags
	KindPtr
	KindArray
	KindString
	KindLen      // len/bytesize of a sibling field
	KindResource // resource use (fd etc.)
	KindStruct
	KindUnion
	KindBuffer // opaque byte buffer with direction
)

// Dir is pointer/buffer direction.
type Dir int

// Directions.
const (
	DirIn Dir = iota
	DirOut
	DirInOut
)

// Type is a compiled type descriptor. Exactly the fields relevant to
// Kind are set.
type Type struct {
	Kind TypeKind
	// Bytes is the scalar width for Int/Const/Flags/Len (1,2,4,8).
	Bytes int
	// Val is the constant value for Const.
	Val uint64
	// Vals are the allowed values for Flags.
	Vals []uint64
	// Min/Max bound Int when Ranged.
	Ranged   bool
	Min, Max int64
	// Dir applies to Ptr and Buffer.
	Dir Dir
	// Elem is the pointee (Ptr) or element (Array) type.
	Elem *Type
	// FixedLen is the array length; -1 means variable.
	FixedLen int
	// Str is the literal for String (empty = arbitrary).
	Str string
	// LenTarget is the sibling field name for Len; InBytes selects
	// byte semantics (bytesize / non-array targets).
	LenTarget string
	InBytes   bool
	// Res is the resource name for Resource.
	Res string
	// StructName and Fields describe Struct/Union.
	StructName string
	Fields     []Field
	// Out marks kernel-written struct fields.
	Out bool
}

// Field is a named member of a struct, union, or argument list.
type Field struct {
	Name string
	Type *Type
}

// Syscall is a compiled syscall descriptor.
type Syscall struct {
	// Name is the full name (callname$variant); CallName the base.
	Name     string
	CallName string
	Args     []Field
	// Ret is the resource the call creates ("" if none).
	Ret string
	// ID is the index in Target.Syscalls.
	ID int
}

// ResourceDesc describes a resource kind.
type ResourceDesc struct {
	Name string
	// Base is the parent resource or builtin type name.
	Base string
}

// Target is the compiled description set a fuzzer runs against (the
// analogue of Syzkaller's prog.Target).
type Target struct {
	Syscalls  []*Syscall
	ByName    map[string]*Syscall
	Resources map[string]*ResourceDesc
	// creators maps resource name → syscall IDs producing it.
	creators map[string][]int
	// consumers maps resource name → syscall IDs taking it as an
	// argument.
	consumers map[string][]int
}

// Consumers returns the syscalls that can consume a value of the
// given resource kind (direct consumers plus consumers of any
// ancestor resource the value is compatible with).
func (t *Target) Consumers(res string) []*Syscall {
	var out []*Syscall
	seen := map[int]bool{}
	for cur := res; cur != ""; {
		for _, id := range t.consumers[cur] {
			if !seen[id] {
				seen[id] = true
				out = append(out, t.Syscalls[id])
			}
		}
		r := t.Resources[cur]
		if r == nil {
			break
		}
		cur = r.Base
	}
	return out
}

// Creators returns the syscalls whose return value satisfies the
// given resource (the resource itself or any derived resource).
func (t *Target) Creators(res string) []*Syscall {
	var out []*Syscall
	for _, id := range t.creators[res] {
		out = append(out, t.Syscalls[id])
	}
	return out
}

// compatible reports whether a value of resource kind "have" can be
// used where "want" is expected (have == want or have derives from
// want through base links).
func (t *Target) compatible(have, want string) bool {
	for cur := have; cur != ""; {
		if cur == want {
			return true
		}
		r := t.Resources[cur]
		if r == nil {
			return false
		}
		cur = r.Base
	}
	return false
}

// Size returns the encoded byte size of a value of this type; for
// variable arrays it needs the instance value, so this returns the
// minimum size (elements 0).
func (ty *Type) Size() int {
	switch ty.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		if ty.Bytes == 0 {
			return 4
		}
		return ty.Bytes
	case KindPtr, KindResource:
		return 8
	case KindString:
		return len(ty.Str) + 1
	case KindArray:
		if ty.FixedLen > 0 {
			return ty.FixedLen * ty.Elem.Size()
		}
		return 0
	case KindStruct:
		size := 0
		for _, f := range ty.Fields {
			a := f.Type.align()
			if rem := size % a; rem != 0 {
				size += a - rem
			}
			size += f.Type.Size()
		}
		if a := ty.align(); a > 0 {
			if rem := size % a; rem != 0 {
				size += a - rem
			}
		}
		return size
	case KindUnion:
		max := 0
		for _, f := range ty.Fields {
			if s := f.Type.Size(); s > max {
				max = s
			}
		}
		return max
	case KindBuffer:
		return 0
	}
	return 0
}

// align returns the natural alignment of the type under C rules.
func (ty *Type) align() int {
	switch ty.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		if ty.Bytes == 0 {
			return 4
		}
		return ty.Bytes
	case KindPtr, KindResource:
		return 8
	case KindString, KindBuffer:
		return 1
	case KindArray:
		return ty.Elem.align()
	case KindStruct, KindUnion:
		a := 1
		for _, f := range ty.Fields {
			if fa := f.Type.align(); fa > a {
				a = fa
			}
		}
		return a
	}
	return 1
}

// String renders a compact type description for diagnostics.
func (ty *Type) String() string {
	switch ty.Kind {
	case KindInt:
		return fmt.Sprintf("int%d", ty.Bytes*8)
	case KindConst:
		return fmt.Sprintf("const[%d]", ty.Val)
	case KindFlags:
		return fmt.Sprintf("flags[%d vals]", len(ty.Vals))
	case KindPtr:
		return fmt.Sprintf("ptr[%v]", ty.Elem)
	case KindArray:
		return fmt.Sprintf("array[%v]", ty.Elem)
	case KindString:
		return fmt.Sprintf("string[%q]", ty.Str)
	case KindLen:
		return fmt.Sprintf("len[%s]", ty.LenTarget)
	case KindResource:
		return fmt.Sprintf("res[%s]", ty.Res)
	case KindStruct:
		return "struct " + ty.StructName
	case KindUnion:
		return "union " + ty.StructName
	case KindBuffer:
		return "buffer"
	}
	return "?"
}
