package prog

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Value is a concrete argument value for a compiled type.
type Value struct {
	Type *Type
	// Scalar holds Int/Const/Flags/Len values.
	Scalar uint64
	// Data holds String/Buffer bytes.
	Data []byte
	// Fields holds struct members or array elements.
	Fields []*Value
	// UnionIdx selects the active union option (index into
	// Type.Fields); Fields then has exactly one element.
	UnionIdx int
	// Ptr is the pointee for KindPtr (nil encodes NULL).
	Ptr *Value
	// ResultOf is the index of the earlier call whose return value
	// this resource argument uses; -1 means no binding (an invalid
	// fd is passed).
	ResultOf int
}

// Call is one syscall invocation in a program.
type Call struct {
	Sc   *Syscall
	Args []*Value
}

// Prog is a sequence of calls (the fuzzer's unit of execution).
type Prog struct {
	Calls []*Call
}

// Clone deep-copies the program.
func (p *Prog) Clone() *Prog {
	c := &Prog{Calls: make([]*Call, len(p.Calls))}
	for i, call := range p.Calls {
		nc := &Call{Sc: call.Sc, Args: make([]*Value, len(call.Args))}
		for j, a := range call.Args {
			nc.Args[j] = a.clone()
		}
		c.Calls[i] = nc
	}
	return c
}

func (v *Value) clone() *Value {
	if v == nil {
		return nil
	}
	c := *v
	c.Data = append([]byte(nil), v.Data...)
	c.Fields = make([]*Value, len(v.Fields))
	for i, f := range v.Fields {
		c.Fields[i] = f.clone()
	}
	c.Ptr = v.Ptr.clone()
	return &c
}

// String renders the program in a syz-prog-like text form.
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		fmt.Fprintf(&b, "r%d = %s(", i, c.Sc.Name)
		for j, a := range c.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// String renders a value compactly.
func (v *Value) String() string {
	if v == nil {
		return "nil"
	}
	switch v.Type.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		return fmt.Sprintf("0x%x", v.Scalar)
	case KindResource:
		if v.ResultOf >= 0 {
			return fmt.Sprintf("r%d", v.ResultOf)
		}
		return "badfd"
	case KindString:
		return fmt.Sprintf("&%q", string(v.Data))
	case KindBuffer:
		return fmt.Sprintf("&[%d bytes]", len(v.Data))
	case KindPtr:
		if v.Ptr == nil {
			return "NULL"
		}
		return "&" + v.Ptr.String()
	case KindStruct, KindUnion:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KindArray:
		return fmt.Sprintf("[%d elems]", len(v.Fields))
	}
	return "?"
}

// FixupLens computes every KindLen field from its sibling target:
// element count for arrays, byte size otherwise. It must run after
// any structural mutation and before encoding.
func (c *Call) FixupLens() {
	for i, f := range c.Sc.Args {
		if f.Type.Kind != KindLen || i >= len(c.Args) {
			continue
		}
		for j, g := range c.Sc.Args {
			if g.Name == f.Type.LenTarget && j < len(c.Args) {
				c.Args[i].Scalar = measure(c.Args[j], f.Type.InBytes)
			}
		}
	}
	for _, a := range c.Args {
		a.fixupLensRec()
	}
}

func (v *Value) fixupLensRec() {
	if v == nil {
		return
	}
	switch v.Type.Kind {
	case KindPtr:
		if v.Ptr != nil {
			v.Ptr.fixupLensRec()
		}
	case KindStruct:
		fields := make([]*Value, len(v.Fields))
		copy(fields, v.Fields)
		fixupValueGroup(v.Type, fields)
		for _, f := range v.Fields {
			f.fixupLensRec()
		}
	case KindUnion, KindArray:
		for _, f := range v.Fields {
			f.fixupLensRec()
		}
	}
}

// fixupValueGroup resolves len fields within one struct instance.
func fixupValueGroup(st *Type, fields []*Value) {
	for i, f := range st.Fields {
		if f.Type.Kind != KindLen || i >= len(fields) {
			continue
		}
		for j, g := range st.Fields {
			if g.Name == f.Type.LenTarget && j < len(fields) {
				fields[i].Scalar = measure(fields[j], f.Type.InBytes)
			}
		}
	}
}

// measure computes the len semantics for a target value: element
// count for arrays, byte size for everything else (and always bytes
// for bytesize). Pointers measure their pointee.
func measure(v *Value, inBytes bool) uint64 {
	if v == nil {
		return 0
	}
	switch v.Type.Kind {
	case KindPtr:
		return measure(v.Ptr, inBytes)
	case KindArray:
		if inBytes {
			return uint64(len(v.Encode()))
		}
		return uint64(len(v.Fields))
	case KindString, KindBuffer:
		return uint64(len(v.Data))
	default:
		return uint64(len(v.Encode()))
	}
}

// Encode serializes the value to raw bytes under C layout rules
// (little-endian scalars, natural alignment, NUL-terminated strings).
// Pointers nested inside payloads encode as zero (the virtual kernel
// does not chase nested user pointers).
func (v *Value) Encode() []byte {
	var buf []byte
	return v.encodeTo(buf)
}

func (v *Value) encodeTo(buf []byte) []byte {
	if v == nil {
		return buf
	}
	switch v.Type.Kind {
	case KindInt, KindConst, KindFlags, KindLen, KindResource:
		n := v.Type.Bytes
		if n == 0 {
			n = 4
		}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v.Scalar)
		return append(buf, tmp[:n]...)
	case KindString:
		buf = append(buf, v.Data...)
		return append(buf, 0)
	case KindBuffer:
		return append(buf, v.Data...)
	case KindPtr:
		var tmp [8]byte
		return append(buf, tmp[:]...)
	case KindArray:
		for _, f := range v.Fields {
			buf = f.encodeTo(buf)
		}
		return buf
	case KindStruct:
		start := len(buf)
		for i, f := range v.Fields {
			var ft *Type
			if i < len(v.Type.Fields) {
				ft = v.Type.Fields[i].Type
			} else {
				ft = f.Type
			}
			a := ft.align()
			for (len(buf)-start)%a != 0 {
				buf = append(buf, 0)
			}
			buf = f.encodeTo(buf)
		}
		a := v.Type.align()
		for (len(buf)-start)%a != 0 {
			buf = append(buf, 0)
		}
		return buf
	case KindUnion:
		start := len(buf)
		if len(v.Fields) > 0 {
			buf = v.Fields[0].encodeTo(buf)
		}
		want := v.Type.Size()
		for len(buf)-start < want {
			buf = append(buf, 0)
		}
		return buf
	}
	return buf
}

// ForEachValue walks every value in the call (args and nested).
func (c *Call) ForEachValue(fn func(*Value)) {
	for _, a := range c.Args {
		a.walk(fn)
	}
}

func (v *Value) walk(fn func(*Value)) {
	if v == nil {
		return
	}
	fn(v)
	if v.Ptr != nil {
		v.Ptr.walk(fn)
	}
	for _, f := range v.Fields {
		f.walk(fn)
	}
}
