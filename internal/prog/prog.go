package prog

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Value is a concrete argument value for a compiled type.
type Value struct {
	Type *Type
	// Scalar holds Int/Const/Flags/Len values.
	Scalar uint64
	// Data holds String/Buffer bytes.
	Data []byte
	// Fields holds struct members or array elements.
	Fields []*Value
	// UnionIdx selects the active union option (index into
	// Type.Fields); Fields then has exactly one element.
	UnionIdx int
	// Ptr is the pointee for KindPtr (nil encodes NULL).
	Ptr *Value
	// ResultOf is the index of the earlier call whose return value
	// this resource argument uses; -1 means no binding (an invalid
	// fd is passed).
	ResultOf int
}

// Call is one syscall invocation in a program.
type Call struct {
	Sc   *Syscall
	Args []*Value
}

// Prog is a sequence of calls (the fuzzer's unit of execution).
type Prog struct {
	Calls []*Call
}

// Clone deep-copies the program. Value nodes and Fields slices are
// bump-allocated from chunked arenas: cloning is the fuzzing loop's
// hottest allocation site (every mutation clones its seed), and
// collapsing the per-node allocations into chunks roughly halves the
// loop's GC pressure. Cloned nodes are ordinary addressable values;
// callers may mutate them freely.
func (p *Prog) Clone() *Prog {
	a := cloneArena{chunk: arenaChunk}
	c := &Prog{Calls: make([]*Call, len(p.Calls))}
	for i, call := range p.Calls {
		nc := &Call{Sc: call.Sc, Args: a.fields(len(call.Args))}
		for j, arg := range call.Args {
			nc.Args[j] = arg.cloneInto(&a)
		}
		c.Calls[i] = nc
	}
	return c
}

// cloneArena bump-allocates Value nodes and []*Value backing arrays
// in fixed-size chunks. Chunks are never grown in place, so issued
// pointers and slices stay valid for the life of the clone.
type cloneArena struct {
	nodes []Value
	ptrs  []*Value
	// chunk is the size of the next chunk, doubling up to arenaChunk:
	// single-value clones (Value.clone) allocate only a handful of
	// nodes, whole-program clones quickly reach full-size chunks.
	chunk int
}

const arenaChunk = 128

func (a *cloneArena) nextChunk() int {
	switch {
	case a.chunk == 0:
		a.chunk = 8
	case a.chunk < arenaChunk:
		a.chunk *= 2
	}
	return a.chunk
}

func (a *cloneArena) node() *Value {
	if len(a.nodes) == cap(a.nodes) {
		a.nodes = make([]Value, 0, a.nextChunk())
	}
	a.nodes = a.nodes[:len(a.nodes)+1]
	return &a.nodes[len(a.nodes)-1]
}

// fields carves an n-element pointer slice, capped at its own length
// so a later append reallocates instead of clobbering neighbors.
func (a *cloneArena) fields(n int) []*Value {
	if n == 0 {
		return nil
	}
	if len(a.ptrs)+n > cap(a.ptrs) {
		c := a.nextChunk()
		if n > c {
			c = n
		}
		a.ptrs = make([]*Value, 0, c)
	}
	i := len(a.ptrs)
	a.ptrs = a.ptrs[:i+n]
	return a.ptrs[i : i+n : i+n]
}

func (v *Value) cloneInto(a *cloneArena) *Value {
	if v == nil {
		return nil
	}
	c := a.node()
	*c = *v
	c.Data = append([]byte(nil), v.Data...)
	c.Fields = a.fields(len(v.Fields))
	for i, f := range v.Fields {
		c.Fields[i] = f.cloneInto(a)
	}
	c.Ptr = v.Ptr.cloneInto(a)
	return c
}

// clone deep-copies one value tree (single-node use; Prog.Clone
// amortizes allocation across the whole program instead).
func (v *Value) clone() *Value {
	var a cloneArena
	return v.cloneInto(&a)
}

// String renders the program in a syz-prog-like text form.
func (p *Prog) String() string {
	var b strings.Builder
	for i, c := range p.Calls {
		fmt.Fprintf(&b, "r%d = %s(", i, c.Sc.Name)
		for j, a := range c.Args {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
		}
		b.WriteString(")\n")
	}
	return b.String()
}

// String renders a value compactly.
func (v *Value) String() string {
	if v == nil {
		return "nil"
	}
	switch v.Type.Kind {
	case KindInt, KindConst, KindFlags, KindLen:
		return fmt.Sprintf("0x%x", v.Scalar)
	case KindResource:
		if v.ResultOf >= 0 {
			return fmt.Sprintf("r%d", v.ResultOf)
		}
		return "badfd"
	case KindString:
		return fmt.Sprintf("&%q", string(v.Data))
	case KindBuffer:
		return fmt.Sprintf("&[%d bytes]", len(v.Data))
	case KindPtr:
		if v.Ptr == nil {
			return "NULL"
		}
		return "&" + v.Ptr.String()
	case KindStruct, KindUnion:
		parts := make([]string, len(v.Fields))
		for i, f := range v.Fields {
			parts[i] = f.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	case KindArray:
		return fmt.Sprintf("[%d elems]", len(v.Fields))
	}
	return "?"
}

// FixupLens computes every KindLen field from its sibling target:
// element count for arrays, byte size otherwise. It must run after
// any structural mutation and before encoding.
func (c *Call) FixupLens() {
	for i, f := range c.Sc.Args {
		if f.Type.Kind != KindLen || i >= len(c.Args) {
			continue
		}
		for j, g := range c.Sc.Args {
			if g.Name == f.Type.LenTarget && j < len(c.Args) {
				c.Args[i].Scalar = measure(c.Args[j], f.Type.InBytes)
			}
		}
	}
	for _, a := range c.Args {
		a.fixupLensRec()
	}
}

func (v *Value) fixupLensRec() {
	if v == nil {
		return
	}
	switch v.Type.Kind {
	case KindPtr:
		if v.Ptr != nil {
			v.Ptr.fixupLensRec()
		}
	case KindStruct:
		fields := make([]*Value, len(v.Fields))
		copy(fields, v.Fields)
		fixupValueGroup(v.Type, fields)
		for _, f := range v.Fields {
			f.fixupLensRec()
		}
	case KindUnion, KindArray:
		for _, f := range v.Fields {
			f.fixupLensRec()
		}
	}
}

// fixupValueGroup resolves len fields within one struct instance.
func fixupValueGroup(st *Type, fields []*Value) {
	for i, f := range st.Fields {
		if f.Type.Kind != KindLen || i >= len(fields) {
			continue
		}
		for j, g := range st.Fields {
			if g.Name == f.Type.LenTarget && j < len(fields) {
				fields[i].Scalar = measure(fields[j], f.Type.InBytes)
			}
		}
	}
}

// measure computes the len semantics for a target value: element
// count for arrays, byte size for everything else (and always bytes
// for bytesize). Pointers measure their pointee.
func measure(v *Value, inBytes bool) uint64 {
	if v == nil {
		return 0
	}
	switch v.Type.Kind {
	case KindPtr:
		return measure(v.Ptr, inBytes)
	case KindArray:
		if inBytes {
			return uint64(len(v.Encode()))
		}
		return uint64(len(v.Fields))
	case KindString, KindBuffer:
		return uint64(len(v.Data))
	default:
		return uint64(len(v.Encode()))
	}
}

// Encode serializes the value to raw bytes under C layout rules
// (little-endian scalars, natural alignment, NUL-terminated strings).
// Pointers nested inside payloads encode as zero (the virtual kernel
// does not chase nested user pointers).
func (v *Value) Encode() []byte {
	var buf []byte
	return v.encodeTo(buf)
}

func (v *Value) encodeTo(buf []byte) []byte {
	if v == nil {
		return buf
	}
	switch v.Type.Kind {
	case KindInt, KindConst, KindFlags, KindLen, KindResource:
		n := v.Type.Bytes
		if n == 0 {
			n = 4
		}
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v.Scalar)
		return append(buf, tmp[:n]...)
	case KindString:
		buf = append(buf, v.Data...)
		return append(buf, 0)
	case KindBuffer:
		return append(buf, v.Data...)
	case KindPtr:
		var tmp [8]byte
		return append(buf, tmp[:]...)
	case KindArray:
		for _, f := range v.Fields {
			buf = f.encodeTo(buf)
		}
		return buf
	case KindStruct:
		start := len(buf)
		for i, f := range v.Fields {
			var ft *Type
			if i < len(v.Type.Fields) {
				ft = v.Type.Fields[i].Type
			} else {
				ft = f.Type
			}
			a := ft.align()
			for (len(buf)-start)%a != 0 {
				buf = append(buf, 0)
			}
			buf = f.encodeTo(buf)
		}
		a := v.Type.align()
		for (len(buf)-start)%a != 0 {
			buf = append(buf, 0)
		}
		return buf
	case KindUnion:
		start := len(buf)
		if len(v.Fields) > 0 {
			buf = v.Fields[0].encodeTo(buf)
		}
		want := v.Type.Size()
		for len(buf)-start < want {
			buf = append(buf, 0)
		}
		return buf
	}
	return buf
}

// ForEachValue walks every value in the call (args and nested).
func (c *Call) ForEachValue(fn func(*Value)) {
	for _, a := range c.Args {
		a.walk(fn)
	}
}

func (v *Value) walk(fn func(*Value)) {
	if v == nil {
		return
	}
	fn(v)
	if v.Ptr != nil {
		v.Ptr.walk(fn)
	}
	for _, f := range v.Fields {
		f.walk(fn)
	}
}
