package prog

import (
	"math/rand"
	"testing"

	"kernelgpt/internal/syzlang"
)

// resSpec embeds resources inside unions and arrays — the shapes
// whose mid-program regeneration historically minted forward
// references (a creator appended after its consumer).
const resSpec = `
resource fd_dev[fd]

openat$dev(fd const[AT_FDCWD], file ptr[in, string["/dev/testdev"]], flags const[O_RDWR], mode const[0]) fd_dev
ioctl$PICK(fd fd_dev, cmd const[1], arg ptr[in, pick_arg])
ioctl$BATCH(fd fd_dev, cmd const[2], arg ptr[in, res_list])

pick_arg [
	num	int64
	dev	fd_dev
]

res_list {
	n	len[devs, int32]
	devs	array[fd_dev]
}
`

func resTarget(t *testing.T) *Target {
	t.Helper()
	f, errs := syzlang.Parse(resSpec)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	env := syzlang.NewEnv(map[string]uint64{"AT_FDCWD": 0xffffff9c, "O_RDWR": 2})
	if verrs := syzlang.Validate(f, env); len(verrs) > 0 {
		t.Fatalf("validate: %v", verrs)
	}
	tgt, err := Compile(f, env)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

// TestMutationsKeepProgramsValid is the regression test for the
// dangling/forward fd-reference escapes: every operator, applied
// thousands of times over resource-heavy programs (with donors, so
// splice runs too), must keep Validate happy. Before the
// genValueAt/removeCall fixes, union and array-element regeneration
// appended creator calls after their consumer and removal left
// re-indexed references dangling.
func TestMutationsKeepProgramsValid(t *testing.T) {
	tgt := resTarget(t)
	g := NewGen(tgt, 1)
	ops := DefaultOperators()
	var donorPool []*Prog
	for i := 0; i < 8; i++ {
		donorPool = append(donorPool, g.Generate(6))
	}
	ctx := &MutateCtx{
		MaxCalls: 6,
		Donor:    func() *Prog { return donorPool[g.R.Intn(len(donorPool))] },
	}
	p := g.Generate(6)
	for i := 0; i < 4000; i++ {
		op := ops[i%len(ops)]
		m, _ := g.MutateOp(p, op, ctx)
		if err := m.Validate(tgt); err != nil {
			t.Fatalf("iter %d: %s broke the program: %v\n%s", i, op.Name(), err, m.Serialize())
		}
		p = m
		if i%50 == 0 { // refresh donors so splice sees varied shapes
			donorPool[i/50%len(donorPool)] = g.Generate(6)
		}
	}
}

// TestRemoveCallRewiresDependents checks the new removal semantics:
// a call whose fd a later call consumes is removable, and the
// dependent is rewired to another compatible producer when one
// exists rather than dropped or left dangling.
func TestRemoveCallRewiresDependents(t *testing.T) {
	tgt := resTarget(t)
	g := NewGen(tgt, 7)
	open := tgt.ByName["openat$dev"]
	use := tgt.ByName["ioctl$PICK"]
	mk := func() *Prog {
		p := &Prog{}
		// Two independent producers, then a consumer bound to the first.
		for i := 0; i < 2; i++ {
			args := make([]*Value, len(open.Args))
			for j, f := range open.Args {
				args[j] = &Value{Type: f.Type, ResultOf: -1}
			}
			p.Calls = append(p.Calls, &Call{Sc: open, Args: args})
		}
		fd := &Value{Type: use.Args[0].Type, ResultOf: 0}
		cmd := &Value{Type: use.Args[1].Type, Scalar: 1, ResultOf: -1}
		arg := &Value{Type: use.Args[2].Type, ResultOf: -1}
		p.Calls = append(p.Calls, &Call{Sc: use, Args: []*Value{fd, cmd, arg}})
		return p
	}
	sawRewire := false
	for seed := int64(0); seed < 64; seed++ {
		g.R = rand.New(rand.NewSource(seed))
		p := mk()
		if !g.removeCall(p) {
			t.Fatalf("seed %d: removal refused", seed)
		}
		if err := p.Validate(tgt); err != nil {
			t.Fatalf("seed %d: removal left invalid program: %v\n%s", seed, err, p.Serialize())
		}
		// When producer 0 was the victim but the consumer survived, its
		// fd must have been rewired to the other producer.
		for _, c := range p.Calls {
			if c.Sc == use && len(p.Calls) == 2 {
				if c.Args[0].ResultOf != 0 {
					t.Fatalf("seed %d: dependent not rewired: %s", seed, p.Serialize())
				}
				sawRewire = true
			}
		}
	}
	if !sawRewire {
		t.Fatal("no seed exercised the rewiring path")
	}
}

// TestRemoveCallCascadesWithoutAlternative: with a single producer,
// removing it must drop the dependent too instead of leaving a
// dangling reference.
func TestRemoveCallCascadesWithoutAlternative(t *testing.T) {
	tgt := resTarget(t)
	open := tgt.ByName["openat$dev"]
	use := tgt.ByName["ioctl$PICK"]
	for seed := int64(0); seed < 32; seed++ {
		g := NewGen(tgt, seed)
		args := make([]*Value, len(open.Args))
		for j, f := range open.Args {
			args[j] = &Value{Type: f.Type, ResultOf: -1}
		}
		p := &Prog{Calls: []*Call{{Sc: open, Args: args}}}
		fd := &Value{Type: use.Args[0].Type, ResultOf: 0}
		cmd := &Value{Type: use.Args[1].Type, Scalar: 1, ResultOf: -1}
		arg := &Value{Type: use.Args[2].Type, ResultOf: -1}
		p.Calls = append(p.Calls, &Call{Sc: use, Args: []*Value{fd, cmd, arg}})
		changed := g.removeCall(p)
		if err := p.Validate(tgt); err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, p.Serialize())
		}
		if changed {
			for _, c := range p.Calls {
				if c.Sc == open {
					continue
				}
				if c.Args[0].ResultOf != 0 || p.Calls[0].Sc != open {
					t.Fatalf("seed %d: dangling dependent survived: %s", seed, p.Serialize())
				}
			}
		}
	}
}

// TestMutateStreamDeterministic: the full scheduler-driven mutation
// pipeline — bandit picks, operator application, rewards — replays
// bit-for-bit from the RNG seed.
func TestMutateStreamDeterministic(t *testing.T) {
	tgt := resTarget(t)
	run := func() []string {
		g := NewGen(tgt, 99)
		sched := NewScheduler()
		ops := sched.Ops()
		var donors []*Prog
		for i := 0; i < 4; i++ {
			donors = append(donors, g.Generate(6))
		}
		ctx := &MutateCtx{MaxCalls: 6, Donor: func() *Prog { return donors[g.R.Intn(len(donors))] }}
		p := g.Generate(6)
		var stream []string
		for i := 0; i < 500; i++ {
			idx := sched.Pick(g.R)
			p, _ = g.MutateOp(p, ops[idx], ctx)
			// Synthetic reward derived from the program shape keeps the
			// bandit state on a deterministic trajectory.
			sched.Reward(idx, len(p.Calls)%3)
			stream = append(stream, p.Serialize())
		}
		return stream
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("mutation stream diverged at %d:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

// TestSchedulerAdapts: an operator that keeps yielding coverage must
// end up picked far more often than dry ones; the uniform scheduler
// must stay flat under the same feedback.
func TestSchedulerAdapts(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sched := NewScheduler()
	n := len(sched.Ops())
	const hot = 2
	for i := 0; i < 8000; i++ {
		idx := sched.Pick(r)
		reward := 0
		if idx == hot {
			reward = 4
		}
		sched.Reward(idx, reward)
	}
	snap := sched.Snapshot()
	uniformShare := 8000 / n
	if snap[hot].Picks < 2*uniformShare {
		t.Fatalf("adaptive scheduler did not favor the hot operator: %+v", snap)
	}
	if snap[hot].Weight < 2.0/float64(n) {
		t.Fatalf("hot operator weight too low: %+v", snap)
	}

	r = rand.New(rand.NewSource(3))
	flat := NewUniformScheduler()
	for i := 0; i < 8000; i++ {
		idx := flat.Pick(r)
		reward := 0
		if idx == hot {
			reward = 4
		}
		flat.Reward(idx, reward)
	}
	fsnap := flat.Snapshot()
	if fsnap[hot].Picks > 2*uniformShare {
		t.Fatalf("uniform scheduler reacted to feedback: %+v", fsnap)
	}
}

// TestSpliceGraftsDonorSuffix: splice output programs must contain
// calls from both parents and stay valid.
func TestSpliceGraftsDonorSuffix(t *testing.T) {
	tgt := resTarget(t)
	g := NewGen(tgt, 5)
	donor := g.Generate(6)
	ctx := &MutateCtx{MaxCalls: 6, Donor: func() *Prog { return donor }}
	spliced := 0
	p := g.Generate(6)
	for i := 0; i < 200; i++ {
		m, _ := g.MutateOp(p, OpSplice{}, ctx)
		if err := m.Validate(tgt); err != nil {
			t.Fatalf("iter %d: %v\n%s", i, err, m.Serialize())
		}
		if len(m.Calls) > len(p.Calls) {
			spliced++
		}
	}
	if spliced == 0 {
		t.Fatal("splice never grew a program from donor calls")
	}
}
