package prog

// Mutation entry points. The individual transformations live in
// operator.go as named Operator implementations; this file holds the
// generic drivers (Mutate for uniform selection, MutateOp for
// scheduler-driven selection) and the shared call-level helpers.

// Mutate returns a mutated copy of p (p itself is never modified),
// applying 1–3 uniformly chosen operators. It is the
// feedback-agnostic path; scheduler-driven campaigns use MutateOp.
func (g *Gen) Mutate(p *Prog, maxCalls int) *Prog {
	m := p.Clone()
	if len(m.Calls) == 0 {
		return g.Generate(maxCalls)
	}
	ops := defaultOps
	ctx := &MutateCtx{MaxCalls: maxCalls}
	nops := 1 + g.R.Intn(3)
	for i := 0; i < nops; i++ {
		if !ops[g.R.Intn(len(ops))].Apply(g, m, ctx) {
			g.fallbackMutate(m, ctx)
		}
	}
	return g.finishMutation(m, maxCalls)
}

// defaultOps backs Mutate; operator values are stateless, so sharing
// the slice across goroutines is safe.
var defaultOps = DefaultOperators()

// MutateOp returns a copy of p mutated by one specific operator —
// the scheduler-driven path, where each mutation is credited to
// exactly one operator. If op is inapplicable to p (for example
// splice without a donor), a fallback mutation runs instead so the
// returned program still differs from the seed. The second result is
// the operator that actually mutated the program — the requested op,
// the fallback, or nil when nothing applied (coverage credit must
// follow the operator that did the work, not the one that was asked).
func (g *Gen) MutateOp(p *Prog, op Operator, ctx *MutateCtx) (*Prog, Operator) {
	m := p.Clone()
	if len(m.Calls) == 0 {
		return g.Generate(ctx.maxCalls()), nil
	}
	applied := op
	if !op.Apply(g, m, ctx) {
		applied = g.fallbackMutate(m, ctx)
	}
	return g.finishMutation(m, ctx.maxCalls()), applied
}

// fallbackMutate guarantees an inapplicable operator draw still
// mutates, reporting what ran: tweak an argument if the program has
// any mutable value, else grow it (a lone parameterless open call
// offers nothing to mutate in place), else re-append a call copy.
func (g *Gen) fallbackMutate(m *Prog, ctx *MutateCtx) Operator {
	if (OpMutateArg{}).Apply(g, m, ctx) {
		return OpMutateArg{}
	}
	if (OpInsert{}).Apply(g, m, ctx) {
		return OpInsert{}
	}
	if (OpDuplicate{}).Apply(g, m, ctx) {
		return OpDuplicate{}
	}
	return nil
}

// finishMutation recomputes length fields and regenerates when a
// mutation emptied the program.
func (g *Gen) finishMutation(m *Prog, maxCalls int) *Prog {
	for _, c := range m.Calls {
		c.FixupLens()
	}
	if len(m.Calls) == 0 {
		return g.Generate(maxCalls)
	}
	return m
}

// mutateArg tweaks one randomly chosen value inside one call.
func (g *Gen) mutateArg(p *Prog) bool {
	idx := g.R.Intn(len(p.Calls))
	call := p.Calls[idx]
	var mutable []*Value
	call.ForEachValue(func(v *Value) {
		switch v.Type.Kind {
		case KindInt, KindArray:
			mutable = append(mutable, v)
		case KindFlags:
			if len(v.Type.Vals) > 0 {
				mutable = append(mutable, v)
			}
		case KindString, KindBuffer:
			// Fixed string literals and empty buffers have nothing to
			// corrupt; listing them would make mutateArg a no-op.
			if len(v.Data) > 0 && v.Type.Str == "" {
				mutable = append(mutable, v)
			}
		case KindUnion:
			if len(v.Type.Fields) > 1 {
				mutable = append(mutable, v)
			}
		case KindConst:
			// Corrupting consts is allowed but rare: it probes the
			// kernel's invalid-command handling without destroying
			// most of the program's validity.
			if g.R.Intn(20) == 0 {
				mutable = append(mutable, v)
			}
		}
	})
	if len(mutable) == 0 {
		return false
	}
	v := mutable[g.R.Intn(len(mutable))]
	switch v.Type.Kind {
	case KindInt, KindConst:
		switch g.R.Intn(4) {
		case 0:
			v.Scalar = g.genInt(v.Type)
		case 1:
			v.Scalar++
		case 2:
			v.Scalar ^= 1 << uint(g.R.Intn(64))
		case 3:
			v.Scalar = ^v.Scalar
		}
	case KindFlags:
		if len(v.Type.Vals) > 0 {
			v.Scalar = v.Type.Vals[g.R.Intn(len(v.Type.Vals))]
		}
	case KindString, KindBuffer:
		v.Data[g.R.Intn(len(v.Data))] = byte(g.R.Intn(256))
	case KindArray:
		g.mutateArray(p, idx, v)
	case KindUnion:
		v.UnionIdx = g.R.Intn(len(v.Type.Fields))
		v.Fields = []*Value{g.genValueAt(p, v.Type.Fields[v.UnionIdx].Type, idx)}
	}
	return true
}

// mutateArray grows, shrinks, or regenerates an element of the array
// value v, which lives inside call callIdx (element regeneration must
// bind resources strictly before that call).
func (g *Gen) mutateArray(p *Prog, callIdx int, v *Value) {
	if v.Type.FixedLen >= 0 {
		// Fixed arrays only mutate elements.
		if len(v.Fields) > 0 {
			idx := g.R.Intn(len(v.Fields))
			v.Fields[idx] = g.genValueAt(p, v.Type.Elem, callIdx)
		}
		return
	}
	if len(v.Fields) == 0 {
		// Shrinking or re-rolling an empty array is a no-op; grow it.
		v.Fields = append(v.Fields, g.genValueAt(p, v.Type.Elem, callIdx))
		return
	}
	switch g.R.Intn(3) {
	case 0: // grow
		v.Fields = append(v.Fields, g.genValueAt(p, v.Type.Elem, callIdx))
	case 1: // shrink
		v.Fields = v.Fields[:len(v.Fields)-1]
	case 2: // mutate element
		idx := g.R.Intn(len(v.Fields))
		v.Fields[idx] = g.genValueAt(p, v.Type.Elem, callIdx)
	}
}

// removeCall drops one random call — including calls whose results
// later calls consume. Each dependent reference is rewired to another
// earlier compatible producer when one exists; dependents with no
// alternative producer are dropped too (cascading), so the surviving
// program never holds a dangling or forward result index.
func (g *Gen) removeCall(p *Prog) bool {
	if len(p.Calls) <= 1 {
		return false
	}
	victim := g.R.Intn(len(p.Calls))
	dropped := map[int]bool{victim: true}
	queue := []int{victim}
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		for ci := d + 1; ci < len(p.Calls); ci++ {
			if dropped[ci] {
				continue
			}
			keep := true
			p.Calls[ci].ForEachValue(func(v *Value) {
				if v.Type.Kind != KindResource || v.ResultOf != d {
					return
				}
				if alt := g.findCompatible(p, ci, v.Type.Res, func(i int) bool { return dropped[i] }); alt >= 0 {
					v.ResultOf = alt
				} else {
					keep = false
				}
			})
			if !keep {
				dropped[ci] = true
				queue = append(queue, ci)
			}
		}
	}
	if len(dropped) >= len(p.Calls) {
		return false // would empty the program; let another operator act
	}
	// Compact and remap the surviving references.
	remap := make([]int, len(p.Calls))
	n := 0
	for i, c := range p.Calls {
		if dropped[i] {
			remap[i] = -1
			continue
		}
		remap[i] = n
		p.Calls[n] = c
		n++
	}
	p.Calls = p.Calls[:n]
	for _, c := range p.Calls {
		c.ForEachValue(func(v *Value) {
			if v.Type.Kind == KindResource && v.ResultOf >= 0 {
				v.ResultOf = remap[v.ResultOf]
			}
		})
	}
	return true
}

// Validate checks internal consistency of a program: every ResultOf
// points at an earlier call with a compatible resource. Used by tests
// and as a fuzzer-side assertion.
func (p *Prog) Validate(t *Target) error {
	for i, c := range p.Calls {
		var err error
		c.ForEachValue(func(v *Value) {
			if err != nil || v.Type.Kind != KindResource || v.ResultOf < 0 {
				return
			}
			if v.ResultOf >= i {
				err = errIndex{call: i, ref: v.ResultOf}
				return
			}
			ret := p.Calls[v.ResultOf].Sc.Ret
			if ret == "" || !t.compatible(ret, v.Type.Res) {
				err = errCompat{call: i, ref: v.ResultOf, want: v.Type.Res, have: ret}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

type errIndex struct{ call, ref int }

func (e errIndex) Error() string {
	return "call " + itoa(e.call) + " references non-earlier result r" + itoa(e.ref)
}

type errCompat struct {
	call, ref  int
	want, have string
}

func (e errCompat) Error() string {
	return "call " + itoa(e.call) + " wants resource " + e.want + " but r" + itoa(e.ref) + " makes " + e.have
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
