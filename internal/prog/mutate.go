package prog

// Mutation operators mirror Syzkaller's core set: tweak a scalar,
// reselect a flags value, resize an array, corrupt a buffer, insert a
// freshly generated call, or drop a call whose result is unused.

// Mutate returns a mutated copy of p (p itself is never modified).
func (g *Gen) Mutate(p *Prog, maxCalls int) *Prog {
	m := p.Clone()
	if len(m.Calls) == 0 {
		return g.Generate(maxCalls)
	}
	nops := 1 + g.R.Intn(3)
	for i := 0; i < nops; i++ {
		switch g.R.Intn(6) {
		case 0, 1, 2:
			g.mutateArg(m)
		case 3:
			g.insertCall(m, maxCalls)
		case 4:
			g.removeCall(m)
		case 5:
			g.duplicateCall(m, maxCalls)
		}
	}
	for _, c := range m.Calls {
		c.FixupLens()
	}
	if len(m.Calls) == 0 {
		return g.Generate(maxCalls)
	}
	return m
}

// mutateArg tweaks one randomly chosen value inside one call.
func (g *Gen) mutateArg(p *Prog) {
	call := p.Calls[g.R.Intn(len(p.Calls))]
	var mutable []*Value
	call.ForEachValue(func(v *Value) {
		switch v.Type.Kind {
		case KindInt, KindFlags, KindString, KindBuffer, KindArray, KindUnion:
			mutable = append(mutable, v)
		case KindConst:
			// Corrupting consts is allowed but rare: it probes the
			// kernel's invalid-command handling without destroying
			// most of the program's validity.
			if g.R.Intn(20) == 0 {
				mutable = append(mutable, v)
			}
		}
	})
	if len(mutable) == 0 {
		return
	}
	v := mutable[g.R.Intn(len(mutable))]
	switch v.Type.Kind {
	case KindInt, KindConst:
		switch g.R.Intn(4) {
		case 0:
			v.Scalar = g.genInt(v.Type)
		case 1:
			v.Scalar++
		case 2:
			v.Scalar ^= 1 << uint(g.R.Intn(64))
		case 3:
			v.Scalar = ^v.Scalar
		}
	case KindFlags:
		if len(v.Type.Vals) > 0 {
			v.Scalar = v.Type.Vals[g.R.Intn(len(v.Type.Vals))]
		}
	case KindString, KindBuffer:
		if len(v.Data) > 0 && v.Type.Str == "" {
			v.Data[g.R.Intn(len(v.Data))] = byte(g.R.Intn(256))
		}
	case KindArray:
		g.mutateArray(p, v)
	case KindUnion:
		if len(v.Type.Fields) > 1 {
			v.UnionIdx = g.R.Intn(len(v.Type.Fields))
			v.Fields = []*Value{g.genValue(p, v.Type.Fields[v.UnionIdx].Type, maxCreatorDepth)}
		}
	}
}

func (g *Gen) mutateArray(p *Prog, v *Value) {
	if v.Type.FixedLen >= 0 {
		// Fixed arrays only mutate elements.
		if len(v.Fields) > 0 {
			idx := g.R.Intn(len(v.Fields))
			v.Fields[idx] = g.genValue(p, v.Type.Elem, maxCreatorDepth)
		}
		return
	}
	switch g.R.Intn(3) {
	case 0: // grow
		v.Fields = append(v.Fields, g.genValue(p, v.Type.Elem, maxCreatorDepth))
	case 1: // shrink
		if len(v.Fields) > 0 {
			v.Fields = v.Fields[:len(v.Fields)-1]
		}
	case 2: // mutate element
		if len(v.Fields) > 0 {
			idx := g.R.Intn(len(v.Fields))
			v.Fields[idx] = g.genValue(p, v.Type.Elem, maxCreatorDepth)
		}
	}
}

// insertCall appends a new call (appending keeps every existing
// ResultOf index valid).
func (g *Gen) insertCall(p *Prog, maxCalls int) {
	if len(p.Calls) >= maxCalls+4 {
		return
	}
	calls := g.enabledSyscalls()
	if len(calls) == 0 {
		return
	}
	g.appendCall(p, calls[g.R.Intn(len(calls))], 0)
}

// removeCall drops a call whose result no later call references.
func (g *Gen) removeCall(p *Prog) {
	if len(p.Calls) <= 1 {
		return
	}
	used := make([]bool, len(p.Calls))
	for _, c := range p.Calls {
		c.ForEachValue(func(v *Value) {
			if v.Type.Kind == KindResource && v.ResultOf >= 0 && v.ResultOf < len(used) {
				used[v.ResultOf] = true
			}
		})
	}
	var removable []int
	for i := range p.Calls {
		if !used[i] {
			removable = append(removable, i)
		}
	}
	if len(removable) == 0 {
		return
	}
	idx := removable[g.R.Intn(len(removable))]
	p.Calls = append(p.Calls[:idx], p.Calls[idx+1:]...)
	// Reindex references past the removal point.
	for _, c := range p.Calls {
		c.ForEachValue(func(v *Value) {
			if v.Type.Kind == KindResource && v.ResultOf > idx {
				v.ResultOf--
			}
		})
	}
}

// duplicateCall re-appends a copy of a random call (same resource
// bindings), probing repeated-operation state bugs like the CEC UAF.
func (g *Gen) duplicateCall(p *Prog, maxCalls int) {
	if len(p.Calls) >= maxCalls+4 {
		return
	}
	src := p.Calls[g.R.Intn(len(p.Calls))]
	nc := &Call{Sc: src.Sc, Args: make([]*Value, len(src.Args))}
	for i, a := range src.Args {
		nc.Args[i] = a.clone()
	}
	p.Calls = append(p.Calls, nc)
}

// Validate checks internal consistency of a program: every ResultOf
// points at an earlier call with a compatible resource. Used by tests
// and as a fuzzer-side assertion.
func (p *Prog) Validate(t *Target) error {
	for i, c := range p.Calls {
		var err error
		c.ForEachValue(func(v *Value) {
			if err != nil || v.Type.Kind != KindResource || v.ResultOf < 0 {
				return
			}
			if v.ResultOf >= i {
				err = errIndex{call: i, ref: v.ResultOf}
				return
			}
			ret := p.Calls[v.ResultOf].Sc.Ret
			if ret == "" || !t.compatible(ret, v.Type.Res) {
				err = errCompat{call: i, ref: v.ResultOf, want: v.Type.Res, have: ret}
			}
		})
		if err != nil {
			return err
		}
	}
	return nil
}

type errIndex struct{ call, ref int }

func (e errIndex) Error() string {
	return "call " + itoa(e.call) + " references non-earlier result r" + itoa(e.ref)
}

type errCompat struct {
	call, ref  int
	want, have string
}

func (e errCompat) Error() string {
	return "call " + itoa(e.call) + " wants resource " + e.want + " but r" + itoa(e.ref) + " makes " + e.have
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
