package prog

import "math/rand"

// Gen generates and mutates programs for a Target. All randomness
// flows through the seeded source, so campaigns are reproducible.
type Gen struct {
	T *Target
	R *rand.Rand
	// Enabled restricts generation to a syscall subset; nil enables
	// all.
	Enabled map[string]bool
	// NoLocality disables the resource-locality call bias (for the
	// design-choice ablation; stateful bug chains become essentially
	// unreachable without it).
	NoLocality bool
	// resLimited/resLimit bound resource binding during value
	// generation to calls strictly before resLimit and forbid
	// appending creator calls. Mutations regenerating a value inside
	// an existing call set them (via genValueAt) so they cannot
	// manufacture forward references — appended creators would land
	// after the consumer.
	resLimited bool
	resLimit   int
}

// NewGen returns a generator with the given seed.
func NewGen(t *Target, seed int64) *Gen {
	return &Gen{T: t, R: rand.New(rand.NewSource(seed))}
}

// enabledSyscalls returns the usable syscall set.
func (g *Gen) enabledSyscalls() []*Syscall {
	if g.Enabled == nil {
		return g.T.Syscalls
	}
	var out []*Syscall
	for _, s := range g.T.Syscalls {
		if g.Enabled[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// Generate produces a program of up to maxCalls calls, inserting
// resource-creator calls as needed so dependencies are satisfied.
func (g *Gen) Generate(maxCalls int) *Prog {
	p := &Prog{}
	calls := g.enabledSyscalls()
	if len(calls) == 0 {
		return p
	}
	n := 1 + g.R.Intn(maxCalls)
	for len(p.Calls) < n {
		sc := g.chooseCall(p, calls)
		g.appendCall(p, sc, 0)
		if len(p.Calls) > maxCalls+4 {
			break
		}
	}
	return p
}

// chooseCall picks the next syscall, biased toward calls that consume
// resources the program already produces — Syzkaller's choice-table
// locality, without which multi-step handler state (the CEC
// use-after-free chain) is essentially unreachable in large suites.
func (g *Gen) chooseCall(p *Prog, calls []*Syscall) *Syscall {
	if !g.NoLocality && len(p.Calls) > 0 && g.R.Intn(3) != 0 {
		var related []*Syscall
		seen := map[int]bool{}
		for _, c := range p.Calls {
			if c.Sc.Ret == "" {
				continue
			}
			for _, sc := range g.T.Consumers(c.Sc.Ret) {
				if seen[sc.ID] || (g.Enabled != nil && !g.Enabled[sc.Name]) {
					continue
				}
				seen[sc.ID] = true
				related = append(related, sc)
			}
		}
		if len(related) > 0 {
			return related[g.R.Intn(len(related))]
		}
	}
	return calls[g.R.Intn(len(calls))]
}

const maxCreatorDepth = 6

// appendCall appends a call to sc, first ensuring creators exist for
// its resource arguments.
func (g *Gen) appendCall(p *Prog, sc *Syscall, depth int) int {
	if depth > maxCreatorDepth {
		return -1
	}
	args := make([]*Value, len(sc.Args))
	for i, f := range sc.Args {
		args[i] = g.genValue(p, f.Type, depth)
	}
	call := &Call{Sc: sc, Args: args}
	call.FixupLens()
	p.Calls = append(p.Calls, call)
	return len(p.Calls) - 1
}

// genValueAt builds a random value destined for the existing call at
// index callIdx: resource references bind only to calls strictly
// before it and no creator calls are appended (they would land after
// the consumer, leaving a forward reference).
func (g *Gen) genValueAt(p *Prog, ty *Type, callIdx int) *Value {
	g.resLimited, g.resLimit = true, callIdx
	v := g.genValue(p, ty, maxCreatorDepth)
	g.resLimited = false
	return v
}

// genValue builds a random value for ty, possibly appending creator
// calls to p first (so resource ResultOf indices stay valid).
func (g *Gen) genValue(p *Prog, ty *Type, depth int) *Value {
	v := &Value{Type: ty, ResultOf: -1}
	switch ty.Kind {
	case KindConst:
		v.Scalar = ty.Val
	case KindInt:
		v.Scalar = g.genInt(ty)
	case KindFlags:
		if len(ty.Vals) > 0 {
			v.Scalar = ty.Vals[g.R.Intn(len(ty.Vals))]
		}
	case KindLen:
		// Filled by FixupLens.
	case KindResource:
		v.ResultOf = g.findOrMakeResource(p, ty.Res, depth)
	case KindPtr:
		if g.R.Intn(50) == 0 {
			return v // occasional NULL pointer
		}
		v.Ptr = g.genValue(p, ty.Elem, depth)
	case KindString:
		if ty.Str != "" {
			v.Data = []byte(ty.Str)
		} else {
			v.Data = g.randBytes(1 + g.R.Intn(16))
		}
	case KindBuffer:
		v.Data = g.randBytes(g.R.Intn(64))
	case KindArray:
		count := ty.FixedLen
		if count < 0 {
			if ty.Ranged {
				count = int(ty.Min) + g.R.Intn(int(ty.Max-ty.Min)+1)
			} else {
				count = g.R.Intn(8)
			}
		}
		for i := 0; i < count; i++ {
			v.Fields = append(v.Fields, g.genValue(p, ty.Elem, depth))
		}
	case KindStruct:
		for i := range ty.Fields {
			v.Fields = append(v.Fields, g.genValue(p, ty.Fields[i].Type, depth))
		}
	case KindUnion:
		if len(ty.Fields) > 0 {
			v.UnionIdx = g.R.Intn(len(ty.Fields))
			v.Fields = []*Value{g.genValue(p, ty.Fields[v.UnionIdx].Type, depth)}
		}
	}
	return v
}

// genInt picks an integer: mostly small/boundary values (which is
// what makes range-gated kernel paths reachable at all), sometimes
// fully random.
func (g *Gen) genInt(ty *Type) uint64 {
	if ty.Ranged {
		span := ty.Max - ty.Min + 1
		if span <= 0 {
			return uint64(ty.Min)
		}
		return uint64(ty.Min + g.R.Int63n(span))
	}
	switch g.R.Intn(10) {
	case 0:
		return 0
	case 1:
		return 1
	case 2:
		return uint64(g.R.Intn(8))
	case 3:
		return 0xffffffff
	case 4:
		return 0xffffffffffffffff
	case 5:
		return 1 << uint(g.R.Intn(32))
	default:
		return g.R.Uint64() >> uint(g.R.Intn(33))
	}
}

func (g *Gen) randBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(g.R.Intn(256))
	}
	return b
}

// findOrMakeResource returns the index of a call producing a value
// compatible with res, creating one (recursively) if none exists.
// Occasionally it deliberately returns -1 (bad fd) to probe error
// paths.
func (g *Gen) findOrMakeResource(p *Prog, res string, depth int) int {
	if g.R.Intn(40) == 0 {
		return -1
	}
	limit := len(p.Calls)
	if g.resLimited && g.resLimit < limit {
		limit = g.resLimit
	}
	var candidates []int
	for i, c := range p.Calls[:limit] {
		if c.Sc.Ret != "" && g.T.compatible(c.Sc.Ret, res) {
			candidates = append(candidates, i)
		}
	}
	if g.resLimited {
		// Mid-program regeneration: bind to an existing producer or
		// pass a bad fd; appending a creator here would place it after
		// the consumer.
		if len(candidates) == 0 {
			return -1
		}
		return candidates[g.R.Intn(len(candidates))]
	}
	if len(candidates) > 0 && g.R.Intn(4) != 0 {
		return candidates[g.R.Intn(len(candidates))]
	}
	creators := g.creatorsEnabled(res)
	if len(creators) == 0 {
		if len(candidates) > 0 {
			return candidates[g.R.Intn(len(candidates))]
		}
		return -1
	}
	sc := creators[g.R.Intn(len(creators))]
	idx := g.appendCall(p, sc, depth+1)
	return idx
}

func (g *Gen) creatorsEnabled(res string) []*Syscall {
	all := g.T.Creators(res)
	if g.Enabled == nil {
		return all
	}
	var out []*Syscall
	for _, s := range all {
		if g.Enabled[s.Name] {
			out = append(out, s)
		}
	}
	return out
}
