package prog

import (
	"encoding/binary"
	"testing"
	"testing/quick"

	"kernelgpt/internal/syzlang"
)

const testSpec = `
resource fd_dev[fd]
resource fd_sub[fd_dev]

openat$dev(fd const[AT_FDCWD], file ptr[in, string["/dev/testdev"]], flags const[O_RDWR], mode const[0]) fd_dev
ioctl$MAKE_SUB(fd fd_dev, cmd const[MAKE_SUB]) fd_sub
ioctl$SET_CFG(fd fd_dev, cmd const[SET_CFG], arg ptr[in, dev_config])
ioctl$SUB_GO(fd fd_sub, cmd const[SUB_GO], arg ptr[in, int32])
setsockopt$opt(fd fd_dev, level const[1], optname const[2], optval ptr[in, dev_config], optlen len[optval, int32])

dev_config {
	mode	int32[0:7]
	count	len[entries, int32]
	pad	int16
	big	int64
	name	array[int8, 8]
	entries	array[int64]
}
`

func testTarget(t *testing.T) *Target {
	t.Helper()
	f, errs := syzlang.Parse(testSpec)
	if len(errs) > 0 {
		t.Fatalf("parse: %v", errs)
	}
	env := syzlang.NewEnv(map[string]uint64{
		"AT_FDCWD": 0xffffff9c, "O_RDWR": 2,
		"MAKE_SUB": 0x7001, "SET_CFG": 0x7002, "SUB_GO": 0x7003,
	})
	if verrs := syzlang.Validate(f, env); len(verrs) > 0 {
		t.Fatalf("validate: %v", verrs)
	}
	tgt, err := Compile(f, env)
	if err != nil {
		t.Fatal(err)
	}
	return tgt
}

func TestCompileTarget(t *testing.T) {
	tgt := testTarget(t)
	if len(tgt.Syscalls) != 5 {
		t.Fatalf("want 5 syscalls, got %d", len(tgt.Syscalls))
	}
	open := tgt.ByName["openat$dev"]
	if open == nil || open.Ret != "fd_dev" {
		t.Fatalf("bad openat: %+v", open)
	}
	cfg := tgt.ByName["ioctl$SET_CFG"].Args[2].Type
	if cfg.Kind != KindPtr || cfg.Elem.Kind != KindStruct {
		t.Fatalf("bad arg type: %v", cfg)
	}
	if cfg.Elem.Fields[1].Type.Kind != KindLen || cfg.Elem.Fields[1].Type.LenTarget != "entries" {
		t.Fatalf("len field not compiled: %v", cfg.Elem.Fields[1].Type)
	}
}

func TestCreatorsAndCompatibility(t *testing.T) {
	tgt := testTarget(t)
	// fd_dev is created by openat$dev directly and by ioctl$MAKE_SUB
	// transitively (fd_sub derives from fd_dev).
	names := map[string]bool{}
	for _, sc := range tgt.Creators("fd_dev") {
		names[sc.Name] = true
	}
	if len(names) != 2 || !names["openat$dev"] || !names["ioctl$MAKE_SUB"] {
		t.Fatalf("bad creators for fd_dev: %v", names)
	}
	// fd_sub derives from fd_dev: openat also satisfies... no — the
	// derived resource needs its own creator, but a fd_sub value can
	// be used where fd_dev is wanted.
	if !tgt.compatible("fd_sub", "fd_dev") {
		t.Fatal("fd_sub should be usable as fd_dev")
	}
	if tgt.compatible("fd_dev", "fd_sub") {
		t.Fatal("fd_dev must not be usable as fd_sub")
	}
	// MAKE_SUB creates fd_sub and, transitively, fd_dev.
	found := false
	for _, sc := range tgt.Creators("fd_dev") {
		if sc.Name == "ioctl$MAKE_SUB" {
			found = true
		}
	}
	if found {
		t.Log("MAKE_SUB registered as fd_dev creator (derived)")
	}
}

func TestGenerateSatisfiesDependencies(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 1)
	for i := 0; i < 200; i++ {
		p := g.Generate(6)
		if err := p.Validate(tgt); err != nil {
			t.Fatalf("iteration %d: %v\n%s", i, err, p)
		}
	}
}

func TestGenerateSubResourceChain(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 7)
	g.Enabled = map[string]bool{
		"openat$dev": true, "ioctl$MAKE_SUB": true, "ioctl$SUB_GO": true,
	}
	sawChain := false
	for i := 0; i < 300 && !sawChain; i++ {
		p := g.Generate(5)
		for _, c := range p.Calls {
			if c.Sc.Name != "ioctl$SUB_GO" {
				continue
			}
			if c.Args[0].ResultOf >= 0 && p.Calls[c.Args[0].ResultOf].Sc.Name == "ioctl$MAKE_SUB" {
				sawChain = true
			}
		}
	}
	if !sawChain {
		t.Fatal("generator never built the openat→MAKE_SUB→SUB_GO chain")
	}
}

func TestEncodeStructLayout(t *testing.T) {
	tgt := testTarget(t)
	st := tgt.ByName["ioctl$SET_CFG"].Args[2].Type.Elem
	// Layout: mode@0(4) count@4(4) pad@8(2) [pad 6] big@16(8) name@24(8)
	// entries@32(...). Struct align 8.
	v := &Value{Type: st}
	mk := func(ty *Type, scalar uint64) *Value { return &Value{Type: ty, Scalar: scalar} }
	v.Fields = []*Value{
		mk(st.Fields[0].Type, 5),
		mk(st.Fields[1].Type, 0), // len, fixed later
		mk(st.Fields[2].Type, 0xbbcc),
		mk(st.Fields[3].Type, 0x1122334455667788),
		{Type: st.Fields[4].Type, Fields: []*Value{
			mk(st.Fields[4].Type.Elem, 'a'), mk(st.Fields[4].Type.Elem, 'b'),
			mk(st.Fields[4].Type.Elem, 'c'), mk(st.Fields[4].Type.Elem, 'd'),
			mk(st.Fields[4].Type.Elem, 'e'), mk(st.Fields[4].Type.Elem, 'f'),
			mk(st.Fields[4].Type.Elem, 'g'), mk(st.Fields[4].Type.Elem, 'h'),
		}},
		{Type: st.Fields[5].Type, Fields: []*Value{
			mk(st.Fields[5].Type.Elem, 0xdead), mk(st.Fields[5].Type.Elem, 0xbeef),
		}},
	}
	fixupValueGroup(st, v.Fields)
	if v.Fields[1].Scalar != 2 {
		t.Fatalf("len fixup = %d, want 2 (elements)", v.Fields[1].Scalar)
	}
	raw := v.Encode()
	if len(raw) != 48 {
		t.Fatalf("encoded size = %d, want 48", len(raw))
	}
	if binary.LittleEndian.Uint32(raw[0:]) != 5 {
		t.Fatal("mode not at offset 0")
	}
	if binary.LittleEndian.Uint32(raw[4:]) != 2 {
		t.Fatal("count not at offset 4")
	}
	if binary.LittleEndian.Uint64(raw[16:]) != 0x1122334455667788 {
		t.Fatal("big not at offset 16 (alignment padding missing)")
	}
	if raw[24] != 'a' || raw[31] != 'h' {
		t.Fatal("name array misplaced")
	}
	if binary.LittleEndian.Uint64(raw[32:]) != 0xdead {
		t.Fatal("entries not at offset 32")
	}
}

func TestArgLevelLenFixup(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 3)
	for i := 0; i < 100; i++ {
		p := g.Generate(4)
		for _, c := range p.Calls {
			if c.Sc.Name != "setsockopt$opt" {
				continue
			}
			optval, optlen := c.Args[3], c.Args[4]
			if optval.Ptr == nil {
				continue
			}
			want := uint64(len(optval.Ptr.Encode()))
			if optlen.Scalar != want {
				t.Fatalf("optlen = %d, want %d", optlen.Scalar, want)
			}
			return
		}
	}
	t.Skip("setsockopt never generated (seed-dependent)")
}

func TestMutatePreservesValidity(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 42)
	p := g.Generate(5)
	for i := 0; i < 500; i++ {
		p = g.Mutate(p, 8)
		if err := p.Validate(tgt); err != nil {
			t.Fatalf("mutation %d broke program: %v\n%s", i, err, p)
		}
	}
}

func TestMutateChangesPrograms(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 11)
	p := g.Generate(5)
	changed := 0
	for i := 0; i < 50; i++ {
		m := g.Mutate(p, 8)
		// Serialize is the full-fidelity view: String() elides array
		// elements and buffer bytes, hiding element-level mutations.
		if m.Serialize() != p.Serialize() {
			changed++
		}
	}
	if changed < 40 {
		t.Fatalf("mutation too often a no-op: only %d/50 changed", changed)
	}
}

func TestCloneIndependence(t *testing.T) {
	tgt := testTarget(t)
	g := NewGen(tgt, 5)
	p := g.Generate(5)
	c := p.Clone()
	before := p.String()
	for i := 0; i < 20; i++ {
		g.Mutate(c, 8) // mutate returns copies, but also mutate c in place via returned discard
		c = g.Mutate(c, 8)
	}
	if p.String() != before {
		t.Fatal("mutating the clone changed the original")
	}
}

func TestConstWidening(t *testing.T) {
	f := syzlang.MustParse("ioctl$X(fd fd, cmd const[0xc138fd00])\n")
	tgt, err := Compile(f, syzlang.NewEnv(nil))
	if err != nil {
		t.Fatal(err)
	}
	ty := tgt.ByName["ioctl$X"].Args[1].Type
	if ty.Val != 0xc138fd00 {
		t.Fatalf("const value = %#x", ty.Val)
	}
}

func TestCompileErrors(t *testing.T) {
	f := syzlang.MustParse("ioctl$X(fd fd, cmd const[MISSING_MACRO])\n")
	if _, err := Compile(f, syzlang.NewEnv(nil)); err == nil {
		t.Fatal("expected compile error for unknown constant")
	}
}

func TestQuickGeneratedProgsEncodeAndValidate(t *testing.T) {
	tgt := testTarget(t)
	f := func(seed int64) bool {
		g := NewGen(tgt, seed)
		p := g.Generate(6)
		if p.Validate(tgt) != nil {
			return false
		}
		for _, c := range p.Calls {
			for _, a := range c.Args {
				if a.Type.Kind == KindPtr && a.Ptr != nil {
					a.Ptr.Encode() // must not panic
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMutationChainsStayValid(t *testing.T) {
	tgt := testTarget(t)
	f := func(seed int64) bool {
		g := NewGen(tgt, seed)
		p := g.Generate(4)
		for i := 0; i < 10; i++ {
			p = g.Mutate(p, 8)
		}
		return p.Validate(tgt) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
