package core

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

// Options configure the generator.
type Options struct {
	// Trace records every prompt/completion exchange into
	// Result.Transcript (the -trace flag of cmd/kernelgpt).
	Trace bool
	// MaxIter bounds the iterative analysis per stage (Algorithm 1's
	// MAX_ITER; the paper's default is 5).
	MaxIter int
	// Repair enables the validation-and-repair phase (§3.2).
	Repair bool
	// MaxRepairRounds bounds repair iterations.
	MaxRepairRounds int
	// AllInOne disables iterative narrowing: every stage receives the
	// handler's entire source file in one prompt (the §5.2.3
	// ablation's single-step setting).
	AllInOne bool
}

// DefaultOptions mirrors the paper's configuration.
func DefaultOptions() Options {
	return Options{MaxIter: 5, Repair: true, MaxRepairRounds: 3}
}

// Generator is KernelGPT: it drives the analysis LLM over extracted
// source to synthesize syzlang specifications.
type Generator struct {
	Client llm.Client
	Corpus *corpus.Corpus
	Opts   Options
	pb     promptBuilder
}

// New constructs a Generator.
func New(client llm.Client, c *corpus.Corpus, opts Options) *Generator {
	return &Generator{Client: client, Corpus: c, Opts: opts, pb: promptBuilder{ix: c.Index}}
}

// Result is the outcome of specification generation for one handler.
type Result struct {
	Handler *corpus.Handler
	// Spec is the final specification (nil when generation failed
	// outright).
	Spec *syzlang.File
	// Valid reports whether the final spec passes validation and
	// describes at least one new operation.
	Valid bool
	// Repaired reports that validation initially failed and the
	// repair loop fixed it; ValidDirect that it was clean first try.
	ValidDirect bool
	Repaired    bool
	// Iterations counts LLM analysis rounds across stages.
	Iterations int
	// RemainingErrors holds validation errors that survived repair.
	RemainingErrors []*syzlang.ValidationError
	// Deps lists secondary handlers discovered via dependency
	// analysis (kvm_vm style); their specs are merged into Spec.
	Deps []string
	// Transcript holds the LLM exchanges when Options.Trace is set.
	Transcript []Exchange
}

// Exchange is one traced prompt/completion pair.
type Exchange struct {
	Stage      string
	Prompt     string
	Completion string
}

// NewSyscalls counts described operations beyond the open/socket
// call.
func (r *Result) NewSyscalls() int {
	if r.Spec == nil {
		return 0
	}
	n := 0
	for _, s := range r.Spec.Syscalls {
		if s.CallName != "openat" && s.CallName != "socket" {
			n++
		}
	}
	return n
}

// NewTypes counts struct/union definitions in the result.
func (r *Result) NewTypes() int {
	if r.Spec == nil {
		return 0
	}
	return len(r.Spec.Structs) + len(r.Spec.Unions)
}

// GenerateFor runs the full KernelGPT pipeline for one handler.
func (g *Generator) GenerateFor(ctx context.Context, h *corpus.Handler) *Result {
	res := &Result{Handler: h}
	fileSrc := g.Corpus.Index.Files()[h.SourcePath()]
	defines := definesOf(fileSrc)

	ident := g.identifierStage(ctx, h, fileSrc, defines, res)
	types := g.typeStage(ctx, h, fileSrc, defines, ident, res)
	deps := g.dependencyStage(ctx, h, fileSrc, defines, ident, res)

	spec := g.assemble(h, ident, types, deps, res)
	g.validateAndRepair(ctx, h, fileSrc, defines, spec, res)
	return res
}

// identifierStage runs stage 1 iteratively (Algorithm 1).
func (g *Generator) identifierStage(ctx context.Context, h *corpus.Handler, fileSrc, defines string, res *Result) *llm.IdentResult {
	merged := &llm.IdentResult{}
	// The initial source: registrations plus the entry function —
	// what the extractor hands over for a located operation handler.
	source := defines + "\n" + registrationsOf(fileSrc)
	if g.Opts.AllInOne {
		source = fileSrc
	}
	var unknowns []llm.UnknownRef
	fetched := map[string]bool{}
	for iter := 0; iter < g.Opts.MaxIter; iter++ {
		res.Iterations++
		reply, err := g.complete(ctx, res, h, "identifier", g.pb.build(instrIdent, unknowns, source))
		if err != nil {
			return merged
		}
		r := llm.ParseIdentResult(reply)
		mergeIdent(merged, r)
		if g.Opts.AllInOne {
			break // single-shot: no iterative narrowing
		}
		// Gather newly requested definitions for the next round.
		var next []llm.UnknownRef
		var parts []string
		for _, u := range r.Unknown {
			if fetched[u.Name] {
				continue
			}
			fetched[u.Name] = true
			if code, ok := g.pb.snippetFor(fileSrc, u.Name); ok {
				parts = append(parts, code)
				next = append(next, u)
			}
		}
		if len(next) == 0 {
			break
		}
		source = defines + "\n" + strings.Join(parts, "\n\n")
		unknowns = next
	}
	return merged
}

func mergeIdent(dst, src *llm.IdentResult) {
	if dst.DevicePath == "" {
		dst.DevicePath = src.DevicePath
	}
	if dst.Domain == "" {
		dst.Domain = src.Domain
	}
	if dst.Level == "" {
		dst.Level = src.Level
	}
	have := map[string]bool{}
	for _, c := range dst.Cmds {
		have[c.Macro] = true
	}
	for _, c := range src.Cmds {
		if !have[c.Macro] {
			have[c.Macro] = true
			dst.Cmds = append(dst.Cmds, c)
		}
	}
	haveCalls := map[string]bool{}
	for _, c := range dst.Calls {
		haveCalls[c.Call] = true
	}
	for _, c := range src.Calls {
		if !haveCalls[c.Call] {
			haveCalls[c.Call] = true
			dst.Calls = append(dst.Calls, c)
			continue
		}
		// Prefer the richer entry (a later round may have resolved
		// the sockaddr type from the handler body).
		for i := range dst.Calls {
			if dst.Calls[i].Call == c.Call && dst.Calls[i].Addr == "" && c.Addr != "" {
				dst.Calls[i].Addr = c.Addr
				if dst.Calls[i].Fn == "" {
					dst.Calls[i].Fn = c.Fn
				}
			}
		}
	}
	dst.Unknown = src.Unknown
}

// registrationsOf extracts registration-struct initializations (the
// operation handlers the extractor located) from a file.
func registrationsOf(src string) string {
	var parts []string
	for _, marker := range []string{"struct file_operations", "struct miscdevice", "struct proto_ops", "struct net_proto_family"} {
		idx := 0
		for {
			i := strings.Index(src[idx:], marker)
			if i < 0 {
				break
			}
			i += idx
			end := strings.Index(src[i:], "};")
			if end < 0 {
				break
			}
			start := strings.LastIndex(src[:i], "static")
			if start < 0 {
				start = i
			}
			parts = append(parts, src[start:i+end+2])
			idx = i + end + 2
		}
	}
	// Chardev-registering init functions.
	if i := strings.Index(src, "register_chrdev"); i >= 0 {
		start := strings.LastIndex(src[:i], "static")
		end := strings.Index(src[i:], "}")
		if start >= 0 && end > 0 {
			parts = append(parts, src[start:i+end+1])
		}
	}
	return strings.Join(parts, "\n\n")
}

// typeStage runs stage 2 for every struct the identifier stage named.
func (g *Generator) typeStage(ctx context.Context, h *corpus.Handler, fileSrc, defines string, ident *llm.IdentResult, res *Result) string {
	var wanted []llm.UnknownRef
	seen := map[string]bool{}
	add := func(name, usage string) {
		if name == "" || seen[name] {
			return
		}
		seen[name] = true
		wanted = append(wanted, llm.UnknownRef{Kind: "TYPE", Name: name, Usage: usage})
	}
	for _, c := range ident.Cmds {
		add(c.Arg, "payload of "+c.Macro)
	}
	for _, c := range ident.Calls {
		add(c.Addr, "sockaddr of "+c.Call)
	}
	if len(wanted) == 0 {
		return ""
	}
	var defs []string
	for iter := 0; iter < g.Opts.MaxIter && len(wanted) > 0; iter++ {
		res.Iterations++
		source := g.typeSource(h, fileSrc, defines, ident, wanted)
		reply, err := g.complete(ctx, res, h, "type", g.pb.build(instrType, wanted, source))
		if err != nil {
			break
		}
		r := llm.ParseTypeResult(reply)
		if r.Defs != "" {
			defs = append(defs, r.Defs)
		}
		wanted = nil
		for _, u := range r.Unknown {
			if u.Kind == "TYPE" && !seen[u.Name] {
				seen[u.Name] = true
				wanted = append(wanted, u)
			}
		}
	}
	return strings.Join(defs, "\n")
}

// typeSource gathers struct definitions plus the worker functions
// whose validation code reveals field ranges.
func (g *Generator) typeSource(h *corpus.Handler, fileSrc, defines string, ident *llm.IdentResult, wanted []llm.UnknownRef) string {
	if g.Opts.AllInOne {
		return fileSrc
	}
	var parts []string
	parts = append(parts, defines)
	for _, u := range wanted {
		code, ok := g.Corpus.Index.ExtractType(u.Name)
		if !ok {
			code, ok = g.Corpus.Index.ExtractCode(u.Name)
		}
		if ok {
			parts = append(parts, code)
		}
	}
	for _, c := range ident.Cmds {
		if c.Handler == "" {
			continue
		}
		if code, ok := g.Corpus.Index.ExtractCode(c.Handler); ok {
			parts = append(parts, code)
		}
	}
	// Socket call handlers carry the sockaddr validation checks.
	for _, c := range ident.Calls {
		if c.Fn == "" {
			continue
		}
		if code, ok := g.Corpus.Index.ExtractCode(c.Fn); ok {
			parts = append(parts, code)
		}
	}
	return strings.Join(parts, "\n\n")
}

// dependencyStage runs stage 3 over the worker functions stage 1
// marked as return-value relevant.
func (g *Generator) dependencyStage(ctx context.Context, h *corpus.Handler, fileSrc, defines string, ident *llm.IdentResult, res *Result) *llm.DepResult {
	var refs []llm.UnknownRef
	var parts []string
	for _, c := range ident.Cmds {
		if c.Handler == "" {
			continue
		}
		code, ok := g.Corpus.Index.ExtractCode(c.Handler)
		if !ok {
			continue
		}
		refs = append(refs, llm.UnknownRef{Kind: "FUNC", Name: c.Handler, Usage: c.Macro})
		parts = append(parts, code)
	}
	if len(refs) == 0 {
		return &llm.DepResult{}
	}
	res.Iterations++
	source := strings.Join(parts, "\n\n")
	if g.Opts.AllInOne {
		source = fileSrc
	}
	reply, err := g.complete(ctx, res, h, "dependency", g.pb.build(instrDep, refs, source))
	if err != nil {
		return &llm.DepResult{}
	}
	return llm.ParseDepResult(reply)
}

// GenerateAll runs the pipeline over a handler worklist, following
// dependency discoveries into secondary handlers. Results come back
// in input order (secondary handlers merge into their parent's spec).
// For concurrent generation across a worker pool, use the engine
// package's Engine facade instead.
func (g *Generator) GenerateAll(ctx context.Context, handlers []*corpus.Handler) []*Result {
	out := make([]*Result, 0, len(handlers))
	for _, h := range handlers {
		out = append(out, g.GenerateFor(ctx, h))
	}
	return out
}

// MergeSpecs combines valid results into one suite file, dropping
// duplicate declarations across handlers.
func MergeSpecs(results []*Result) *syzlang.File {
	merged := &syzlang.File{}
	seenRes := map[string]bool{}
	seenCall := map[string]bool{}
	seenType := map[string]bool{}
	seenFlags := map[string]bool{}
	for _, r := range results {
		if r.Spec == nil || !r.Valid {
			continue
		}
		for _, d := range r.Spec.Resources {
			if !seenRes[d.Name] {
				seenRes[d.Name] = true
				merged.Resources = append(merged.Resources, d)
			}
		}
		for _, s := range r.Spec.Syscalls {
			if !seenCall[s.Name()] {
				seenCall[s.Name()] = true
				merged.Syscalls = append(merged.Syscalls, s)
			}
		}
		for _, s := range r.Spec.Structs {
			if !seenType[s.Name] {
				seenType[s.Name] = true
				merged.Structs = append(merged.Structs, s)
			}
		}
		for _, u := range r.Spec.Unions {
			if !seenType[u.Name] {
				seenType[u.Name] = true
				merged.Unions = append(merged.Unions, u)
			}
		}
		for _, fl := range r.Spec.Flags {
			if !seenFlags[fl.Name] {
				seenFlags[fl.Name] = true
				merged.Flags = append(merged.Flags, fl)
			}
		}
	}
	return merged
}

// Stats summarizes a generation run (Table 1 / Table 2 inputs).
type Stats struct {
	Total       int
	Valid       int
	ValidDirect int
	Repaired    int
	Failed      int
	NewSyscalls int
	NewTypes    int
}

// Summarize computes aggregate stats over results.
func Summarize(results []*Result) Stats {
	var s Stats
	for _, r := range results {
		s.Total++
		if r.Valid {
			s.Valid++
			if r.Repaired {
				s.Repaired++
			} else {
				s.ValidDirect++
			}
			s.NewSyscalls += r.NewSyscalls()
			s.NewTypes += r.NewTypes()
		} else {
			s.Failed++
		}
	}
	return s
}

// String renders the stats for logs.
func (s Stats) String() string {
	return fmt.Sprintf("total=%d valid=%d (direct=%d repaired=%d) failed=%d syscalls=%d types=%d",
		s.Total, s.Valid, s.ValidDirect, s.Repaired, s.Failed, s.NewSyscalls, s.NewTypes)
}

// SortResults orders results by handler name for stable output.
func SortResults(results []*Result) {
	sort.Slice(results, func(i, j int) bool {
		return results[i].Handler.Name < results[j].Handler.Name
	})
}

// complete sends a prompt through the client with purpose/driver
// metadata attached, tracing the exchange when configured.
func (g *Generator) complete(ctx context.Context, res *Result, h *corpus.Handler, stage string, msgs []llm.Message) (string, error) {
	resp, err := g.Client.Complete(ctx, llm.Request{
		Messages: msgs, Purpose: stage, Driver: h.Name,
	})
	if g.Opts.Trace {
		var prompt strings.Builder
		for _, m := range msgs {
			prompt.WriteString(m.Content)
			prompt.WriteByte('\n')
		}
		res.Transcript = append(res.Transcript, Exchange{
			Stage: stage, Prompt: prompt.String(), Completion: resp.Text,
		})
	}
	return resp.Text, err
}
