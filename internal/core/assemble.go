package core

import (
	"context"
	"fmt"
	"strings"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

// assemble builds the syzlang file from the three stages' outputs.
func (g *Generator) assemble(h *corpus.Handler, ident *llm.IdentResult, typeDefs string, deps *llm.DepResult, res *Result) *syzlang.File {
	file := &syzlang.File{}
	hid := h.Ident()
	var resName string
	if h.Kind == corpus.KindSocket {
		resName = "sock_" + hid
	} else {
		resName = "fd_" + hid
	}
	file.Resources = append(file.Resources, &syzlang.ResourceDef{Name: resName, Base: "fd"})

	switch {
	case h.Kind == corpus.KindSocket:
		file.Syscalls = append(file.Syscalls, &syzlang.SyscallDef{
			CallName: "socket", Variant: hid,
			Args: []*syzlang.Field{
				mkField("domain", fmt.Sprintf("const[%s]", orZero(ident.Domain))),
				mkField("type", fmt.Sprintf("const[%d]", h.Socket.TypeVal)),
				mkField("proto", "const[0]"),
			},
			Ret: resName,
		})
	case h.Parent == "":
		if ident.DevicePath != "" {
			file.Syscalls = append(file.Syscalls, &syzlang.SyscallDef{
				CallName: "openat", Variant: hid,
				Args: []*syzlang.Field{
					mkField("fd", "const[AT_FDCWD]"),
					mkField("file", fmt.Sprintf("ptr[in, string[%q]]", ident.DevicePath)),
					mkField("flags", "const[O_RDWR]"),
					mkField("mode", "const[0]"),
				},
				Ret: resName,
			})
		}
	}

	// Map dependency results onto creator commands, declaring the
	// secondary resource here so the parent spec validates on its own
	// (the child handler's spec merges in later and deduplicates).
	depRet := map[string]string{}
	for _, d := range deps.Deps {
		child := g.Corpus.Handler(d.Creates)
		childRes := "fd_" + sanitizeIdent(d.Creates)
		if child != nil {
			childRes = "fd_" + child.Ident()
		}
		if depRet[d.Cmd] == "" {
			file.Resources = append(file.Resources, &syzlang.ResourceDef{Name: childRes, Base: "fd"})
		}
		depRet[d.Cmd] = childRes
		res.Deps = append(res.Deps, d.Creates)
	}

	for _, c := range ident.Cmds {
		call := &syzlang.SyscallDef{Variant: c.Macro}
		if h.Kind == corpus.KindSocket {
			call.CallName = "setsockopt"
			call.Args = []*syzlang.Field{
				mkField("fd", resName),
				mkField("level", fmt.Sprintf("const[%s]", orZero(ident.Level))),
				mkField("optname", fmt.Sprintf("const[%s]", c.Macro)),
			}
			switch {
			case c.Arg != "":
				call.Args = append(call.Args,
					mkField("optval", fmt.Sprintf("ptr[%s, %s]", normDir(c.Dir), c.Arg)),
					mkField("optlen", "len[optval, int32]"))
			case c.ArgInt:
				call.Args = append(call.Args,
					mkField("optval", "ptr[in, int32]"),
					mkField("optlen", "len[optval, int32]"))
			default:
				call.Args = append(call.Args,
					mkField("optval", "ptr[in, array[int8]]"),
					mkField("optlen", "len[optval, int32]"))
			}
		} else {
			call.CallName = "ioctl"
			call.Args = []*syzlang.Field{
				mkField("fd", resName),
				mkField("cmd", fmt.Sprintf("const[%s]", c.Macro)),
			}
			switch {
			case c.Arg != "":
				call.Args = append(call.Args,
					mkField("arg", fmt.Sprintf("ptr[%s, %s]", normDir(c.Dir), c.Arg)))
			case c.ArgInt:
				call.Args = append(call.Args, mkField("arg", "ptr[in, int32]"))
			}
			if ret, ok := depRet[c.Macro]; ok {
				call.Ret = ret
			}
		}
		file.Syscalls = append(file.Syscalls, call)
	}

	// Socket calls. The proto_ops sendmsg/recvmsg entries serve both
	// the msg and the to/from syscall forms.
	for _, sc := range ident.Calls {
		for _, callName := range expandSockCall(sc.Call) {
			file.Syscalls = append(file.Syscalls, g.sockCallDef(hid, resName, callName, sc.Addr))
		}
	}

	// Merge stage-2 type definitions (parsed leniently: the repair
	// loop deals with whatever validation finds).
	if typeDefs != "" {
		defs, _ := syzlang.Parse(typeDefs)
		file.Merge(defs)
	}
	dedupTypes(file)
	return file
}

func expandSockCall(call string) []string {
	switch call {
	case "sendmsg":
		return []string{"sendto", "sendmsg"}
	case "recvmsg":
		return []string{"recvfrom", "recvmsg"}
	}
	return []string{call}
}

func (g *Generator) sockCallDef(hid, resName, callName, addr string) *syzlang.SyscallDef {
	addrType := "array[int8]"
	if addr != "" {
		addrType = addr
	}
	def := &syzlang.SyscallDef{CallName: callName, Variant: hid,
		Args: []*syzlang.Field{mkField("fd", resName)}}
	switch callName {
	case "bind", "connect":
		def.Args = append(def.Args,
			mkField("addr", fmt.Sprintf("ptr[in, %s]", addrType)),
			mkField("addrlen", "len[addr, int32]"))
	case "sendto":
		def.Args = append(def.Args,
			mkField("buf", "ptr[in, array[int8]]"),
			mkField("len", "len[buf, intptr]"),
			mkField("f", "const[0]"),
			mkField("addr", fmt.Sprintf("ptr[in, %s]", addrType)),
			mkField("addrlen", "len[addr, int32]"))
	case "recvfrom":
		def.Args = append(def.Args,
			mkField("buf", "ptr[out, array[int8]]"),
			mkField("len", "len[buf, intptr]"),
			mkField("f", "const[0]"),
			mkField("addr", fmt.Sprintf("ptr[in, %s]", addrType)),
			mkField("addrlen", "len[addr, int32]"))
	case "listen":
		def.Args = append(def.Args, mkField("backlog", "int32[0:128]"))
	case "accept":
		def.Args = append(def.Args,
			mkField("peer", "ptr[out, array[int8]]"),
			mkField("peerlen", "len[peer, int32]"))
		def.Ret = resName
	case "sendmsg":
		def.Args = append(def.Args,
			mkField("msg", "ptr[in, array[int8]]"), mkField("f", "const[0]"))
	case "recvmsg":
		def.Args = append(def.Args,
			mkField("msg", "ptr[out, array[int8]]"), mkField("f", "const[0]"))
	case "poll":
		def.Args = append(def.Args, mkField("timeout", "int32"))
	}
	return def
}

func mkField(name, typ string) *syzlang.Field {
	te, err := syzlang.ParseTypeExpr(typ)
	if err != nil {
		// The assembler only builds from parsed model output; a bad
		// expression becomes a buffer arg and will fail validation
		// (and enter the repair loop) rather than panicking.
		te = &syzlang.TypeExpr{Ident: "array", Args: []*syzlang.TypeArg{{Type: &syzlang.TypeExpr{Ident: "int8"}}}}
	}
	return &syzlang.Field{Name: name, Type: te}
}

func normDir(d string) string {
	switch d {
	case "in", "out", "inout":
		return d
	}
	return "in"
}

func orZero(s string) string {
	if s == "" {
		return "0"
	}
	return s
}

func sanitizeIdent(s string) string {
	out := make([]byte, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '-' || c == '#' || c == '/' {
			c = '_'
		}
		out[i] = c
	}
	return string(out)
}

func dedupTypes(f *syzlang.File) {
	seen := map[string]bool{}
	var structs []*syzlang.StructDef
	for _, s := range f.Structs {
		if !seen[s.Name] {
			seen[s.Name] = true
			structs = append(structs, s)
		}
	}
	f.Structs = structs
	var unions []*syzlang.UnionDef
	for _, u := range f.Unions {
		if !seen[u.Name] {
			seen[u.Name] = true
			unions = append(unions, u)
		}
	}
	f.Unions = unions
}

// validateAndRepair runs the §3.2 phase: validate with the
// syz-extract/syz-generate equivalent, feed error messages back to
// the LLM for repair, and as a last resort drop declarations that
// remain broken.
func (g *Generator) validateAndRepair(ctx context.Context, h *corpus.Handler, fileSrc, defines string, spec *syzlang.File, res *Result) {
	env := g.Corpus.Env()
	errs := syzlang.Validate(spec, env)
	if len(errs) == 0 {
		res.Spec = spec
		res.Valid = res.NewSyscalls() > 0
		res.ValidDirect = res.Valid
		return
	}
	if !g.Opts.Repair {
		res.Spec = spec
		res.RemainingErrors = errs
		return
	}
	source := defines + "\n" + registrationsOf(fileSrc)
	cur := spec
	for round := 0; round < g.Opts.MaxRepairRounds && len(errs) > 0; round++ {
		res.Iterations++
		reply, err := g.complete(ctx, res, h, "repair", g.pb.buildRepair(
			syzlang.FormatErrors(syzlang.ValidationErrorsToErrors(errs)),
			syzlang.Format(cur), source))
		if err != nil {
			break
		}
		fixedText := llm.ExtractSection(reply, "## Repaired Specification")
		fixed, perrs := syzlang.Parse(fixedText)
		if len(perrs) > 0 || len(fixed.Syscalls) == 0 {
			// The model mangled the spec; keep the current one and
			// fall through to declaration dropping.
			break
		}
		next := syzlang.Validate(fixed, env)
		if len(next) >= len(errs) && syzlang.Format(fixed) == syzlang.Format(cur) {
			// No progress; the error is hard for this model.
			break
		}
		cur, errs = fixed, next
	}
	// Last resort: drop declarations that still fail, so the rest of
	// the specification remains usable.
	for round := 0; round < 6 && len(errs) > 0; round++ {
		cur = dropInvalidDecls(cur, errs)
		errs = syzlang.Validate(cur, env)
	}
	res.Spec = cur
	res.RemainingErrors = errs
	res.Valid = len(errs) == 0 && res.NewSyscalls() > 0
	res.Repaired = res.Valid
}

// dropInvalidDecls removes every declaration an error is attributed
// to.
func dropInvalidDecls(f *syzlang.File, errs []*syzlang.ValidationError) *syzlang.File {
	bad := map[string]bool{}
	for _, e := range errs {
		bad[e.Decl] = true
	}
	out := &syzlang.File{}
	for _, r := range f.Resources {
		if !bad[r.Name] {
			out.Resources = append(out.Resources, r)
		}
	}
	for _, s := range f.Syscalls {
		if !bad[s.Name()] {
			out.Syscalls = append(out.Syscalls, s)
		}
	}
	for _, s := range f.Structs {
		if !bad[s.Name] {
			out.Structs = append(out.Structs, s)
		}
	}
	for _, u := range f.Unions {
		if !bad[u.Name] {
			out.Unions = append(out.Unions, u)
		}
	}
	for _, fl := range f.Flags {
		if !bad[fl.Name] {
			out.Flags = append(out.Flags, fl)
		}
	}
	return out
}

// FollowDependencies generates specs for secondary handlers the
// dependency stage discovered (kvm_vm / kvm_vcpu) and merges them
// into the parent result. It recurses through chains.
func (g *Generator) FollowDependencies(ctx context.Context, res *Result, visited map[string]bool) {
	if visited == nil {
		visited = map[string]bool{}
	}
	visited[res.Handler.Name] = true
	for _, name := range res.Deps {
		child := g.Corpus.Handler(name)
		if child == nil || visited[name] {
			continue
		}
		visited[name] = true
		childRes := g.GenerateFor(ctx, child)
		g.FollowDependencies(ctx, childRes, visited)
		if childRes.Spec == nil {
			continue
		}
		if res.Spec == nil {
			res.Spec = childRes.Spec
			continue
		}
		mergeUnique(res.Spec, childRes.Spec)
		// Re-validate the merged family.
		errs := syzlang.Validate(res.Spec, g.Corpus.Env())
		for round := 0; round < 4 && len(errs) > 0; round++ {
			res.Spec = dropInvalidDecls(res.Spec, errs)
			errs = syzlang.Validate(res.Spec, g.Corpus.Env())
		}
		res.Valid = len(errs) == 0 && res.NewSyscalls() > 0
	}
}

func mergeUnique(dst, src *syzlang.File) {
	have := map[string]bool{}
	for _, r := range dst.Resources {
		have["r:"+r.Name] = true
	}
	for _, s := range dst.Syscalls {
		have["c:"+s.Name()] = true
	}
	for _, s := range dst.Structs {
		have["t:"+s.Name] = true
	}
	for _, u := range dst.Unions {
		have["t:"+u.Name] = true
	}
	for _, r := range src.Resources {
		if !have["r:"+r.Name] {
			dst.Resources = append(dst.Resources, r)
		}
	}
	for _, s := range src.Syscalls {
		if !have["c:"+s.Name()] {
			dst.Syscalls = append(dst.Syscalls, s)
		}
	}
	for _, s := range src.Structs {
		if !have["t:"+s.Name] {
			dst.Structs = append(dst.Structs, s)
		}
	}
	for _, u := range src.Unions {
		if !have["t:"+u.Name] {
			dst.Unions = append(dst.Unions, u)
		}
	}
	dst.Flags = append(dst.Flags, src.Flags...)
}

// specTextPreview returns the first n lines of a formatted spec (for
// logs and examples).
func specTextPreview(f *syzlang.File, n int) string {
	lines := strings.Split(syzlang.Format(f), "\n")
	if len(lines) > n {
		lines = lines[:n]
	}
	return strings.Join(lines, "\n")
}
