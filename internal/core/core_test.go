package core

import (
	"context"
	"strings"
	"testing"

	"kernelgpt/internal/corpus"
	"kernelgpt/internal/llm"
	"kernelgpt/internal/syzlang"
)

var testCorpus = corpus.Build(corpus.TestConfig())

var ctx = context.Background()

func gen(t *testing.T, model string, seed uint64, opts Options) *Generator {
	t.Helper()
	return New(llm.NewSim(model, seed), testCorpus, opts)
}

func TestDeviceMapperPipeline(t *testing.T) {
	g := gen(t, "gpt-4", 1, DefaultOptions())
	dm := testCorpus.Handler("dm")
	res := g.GenerateFor(ctx, dm)
	if !res.Valid {
		t.Fatalf("dm spec generation failed: errors=%v", res.RemainingErrors)
	}
	text := syzlang.Format(res.Spec)
	// The true nodename path, not the misc .name.
	if !strings.Contains(text, "/dev/mapper/control") {
		t.Fatalf("dm spec lost the nodename path:\n%s", text)
	}
	if strings.Contains(text, "/dev/device-mapper") {
		t.Fatalf("dm spec used the wrong .name path:\n%s", text)
	}
	// Full _IOC-encoded macros, not the raw nr macros, despite the
	// _IOC_NR modification + table dispatch.
	if !strings.Contains(text, "const[DM_LIST_DEVICES]") {
		t.Fatalf("dm spec missing inverted command macro:\n%s", text)
	}
	if strings.Contains(text, "const[DM_LIST_DEVICES_CMD]") {
		t.Fatalf("dm spec used the modified (nr) value:\n%s", text)
	}
	// The shared dm_ioctl payload struct with its len relation.
	if !strings.Contains(text, "dm_ioctl {") {
		t.Fatalf("dm_ioctl struct missing:\n%s", text)
	}
	if !strings.Contains(text, "len[data, int32]") {
		t.Fatalf("len relation not recovered:\n%s", text)
	}
	if res.NewSyscalls() < 15 {
		t.Fatalf("dm spec describes only %d syscalls", res.NewSyscalls())
	}
}

func TestCECPipelineRangesAndComments(t *testing.T) {
	g := gen(t, "gpt-4", 2, DefaultOptions())
	res := g.GenerateFor(ctx, testCorpus.Handler("cec"))
	if !res.Valid {
		t.Fatalf("cec generation failed: %v", res.RemainingErrors)
	}
	text := syzlang.Format(res.Spec)
	// num_log_addrs range comes only from the comment (the cec
	// handler has QuirkCommentHint).
	if !strings.Contains(text, "int8[0:4]") {
		t.Fatalf("comment-hinted range not recovered:\n%s", text)
	}
	// Out fields annotated.
	if !strings.Contains(text, "(out)") {
		t.Fatalf("out attribute missing:\n%s", text)
	}
}

func TestGPT35MissesPatterns(t *testing.T) {
	g4 := gen(t, "gpt-4", 3, DefaultOptions())
	g35 := gen(t, "gpt-3.5", 3, DefaultOptions())
	dm := testCorpus.Handler("dm")
	r4, r35 := g4.GenerateFor(ctx, dm), g35.GenerateFor(ctx, dm)
	// GPT-3.5 cannot follow the lookup table: far fewer syscalls.
	if r35.NewSyscalls() >= r4.NewSyscalls() {
		t.Fatalf("gpt-3.5 (%d) should describe fewer dm syscalls than gpt-4 (%d)",
			r35.NewSyscalls(), r4.NewSyscalls())
	}
}

func TestValidationRepairLoop(t *testing.T) {
	// Scan several seeds: some must need repair (ErrorRate ≈ 0.45)
	// and repair must succeed for most.
	direct, repaired := 0, 0
	for seed := uint64(0); seed < 12; seed++ {
		g := gen(t, "gpt-4", seed, DefaultOptions())
		res := g.GenerateFor(ctx, testCorpus.Handler("cec"))
		if !res.Valid {
			continue
		}
		if res.Repaired {
			repaired++
		} else {
			direct++
		}
	}
	if direct == 0 || repaired == 0 {
		t.Fatalf("repair loop not exercised: direct=%d repaired=%d", direct, repaired)
	}
}

func TestRepairDisabledFailsMore(t *testing.T) {
	optsNoRepair := DefaultOptions()
	optsNoRepair.Repair = false
	validWith, validWithout := 0, 0
	for seed := uint64(0); seed < 10; seed++ {
		if gen(t, "gpt-4", seed, DefaultOptions()).GenerateFor(ctx, testCorpus.Handler("ubi_ctrl")).Valid {
			validWith++
		}
		if gen(t, "gpt-4", seed, optsNoRepair).GenerateFor(ctx, testCorpus.Handler("ubi_ctrl")).Valid {
			validWithout++
		}
	}
	if validWithout > validWith {
		t.Fatalf("repair should not reduce validity: with=%d without=%d", validWith, validWithout)
	}
	if validWith == validWithout {
		t.Logf("note: no seed needed repair for ubi_ctrl (with=%d)", validWith)
	}
}

func TestIndirectHandlerFails(t *testing.T) {
	// Fully indirect handlers (the §5.1.3 hard cases) yield no
	// commands, hence no valid spec.
	var target *corpus.Handler
	for _, h := range testCorpus.Incomplete(corpus.KindDriver) {
		if h.Quirks.Has(corpus.QuirkIndirectCall) {
			target = h
			break
		}
	}
	if target == nil {
		t.Skip("no indirect driver in test corpus")
	}
	g := gen(t, "gpt-4", 4, DefaultOptions())
	res := g.GenerateFor(ctx, target)
	if res.Valid {
		t.Fatalf("indirect handler %s unexpectedly produced a valid spec with %d syscalls",
			target.Name, res.NewSyscalls())
	}
}

func TestSocketPipeline(t *testing.T) {
	g := gen(t, "gpt-4", 5, DefaultOptions())
	res := g.GenerateFor(ctx, testCorpus.Handler("rds"))
	if !res.Valid {
		t.Fatalf("rds generation failed: %v", res.RemainingErrors)
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, "socket$rds") {
		t.Fatalf("socket call missing:\n%s", text)
	}
	if !strings.Contains(text, "sendto$rds") {
		t.Fatalf("sendto description missing (the RDS bug path):\n%s", text)
	}
	if !strings.Contains(text, "setsockopt$") {
		t.Fatalf("sockopt descriptions missing:\n%s", text)
	}
	// The sockaddr family field must be pinned to the domain const.
	if !strings.Contains(text, "const[AF_RDS, int16]") {
		t.Fatalf("family field not pinned to AF_RDS:\n%s", text)
	}
}

func TestKVMDependencyDiscovery(t *testing.T) {
	g := gen(t, "gpt-4", 6, DefaultOptions())
	res := g.GenerateFor(ctx, testCorpus.Handler("kvm"))
	g.FollowDependencies(ctx, res, nil)
	if !res.Valid {
		t.Fatalf("kvm generation failed: %v", res.RemainingErrors)
	}
	found := false
	for _, d := range res.Deps {
		if d == "kvm_vm" {
			found = true
		}
	}
	if !found {
		t.Fatalf("kvm_vm dependency not discovered: %v", res.Deps)
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, "fd_kvm_vm") {
		t.Fatalf("merged family spec lacks fd_kvm_vm:\n%s", text)
	}
	// The creator must return the child resource.
	if !strings.Contains(text, ") fd_kvm_vm") {
		t.Fatalf("KVM_CREATE_VM does not return fd_kvm_vm:\n%s", text)
	}
}

func TestAllInOneDegrades(t *testing.T) {
	iter := gen(t, "gpt-4", 7, DefaultOptions())
	one := DefaultOptions()
	one.AllInOne = true
	single := gen(t, "gpt-4", 7, one)
	// kvm is the paper's showcase: iterative ≫ all-in-one.
	h := testCorpus.Handler("kvm")
	ri, rs := iter.GenerateFor(ctx, h), single.GenerateFor(ctx, h)
	if rs.NewSyscalls() >= ri.NewSyscalls() {
		t.Fatalf("all-in-one (%d syscalls) should underperform iterative (%d)",
			rs.NewSyscalls(), ri.NewSyscalls())
	}
}

func TestGenerateAllSummary(t *testing.T) {
	g := gen(t, "gpt-4", 8, DefaultOptions())
	worklist := testCorpus.Incomplete(corpus.KindDriver)
	results := g.GenerateAll(ctx, worklist)
	stats := Summarize(results)
	if stats.Total != len(worklist) {
		t.Fatalf("stats total %d != %d", stats.Total, len(worklist))
	}
	if stats.Valid == 0 || stats.NewSyscalls == 0 {
		t.Fatalf("no valid specs generated: %v", stats)
	}
	frac := float64(stats.Valid) / float64(stats.Total)
	if frac < 0.6 {
		t.Fatalf("valid fraction %.2f too low (paper: 93%%): %v", frac, stats)
	}
}

func TestMergeSpecsDeduplicates(t *testing.T) {
	g := gen(t, "gpt-4", 9, DefaultOptions())
	r1 := g.GenerateFor(ctx, testCorpus.Handler("dm"))
	r2 := g.GenerateFor(ctx, testCorpus.Handler("dm"))
	merged := MergeSpecs([]*Result{r1, r2})
	seen := map[string]int{}
	for _, s := range merged.Syscalls {
		seen[s.Name()]++
	}
	for name, n := range seen {
		if n > 1 {
			t.Fatalf("syscall %s duplicated %d times after merge", name, n)
		}
	}
	if errs := syzlang.Validate(merged, testCorpus.Env()); len(errs) > 0 {
		t.Fatalf("merged suite invalid: %v", errs)
	}
}

func TestGeneratedSpecValidatesAndFormats(t *testing.T) {
	g := gen(t, "gpt-4", 10, DefaultOptions())
	for _, name := range []string{"dm", "cec", "rds", "dvb_demux", "ptp0"} {
		h := testCorpus.Handler(name)
		if h == nil {
			continue
		}
		res := g.GenerateFor(ctx, h)
		if res.Spec == nil {
			t.Fatalf("%s: nil spec", name)
		}
		if !res.Valid {
			t.Fatalf("%s: invalid spec: %v", name, res.RemainingErrors)
		}
		text := syzlang.Format(res.Spec)
		if _, errs := syzlang.Parse(text); len(errs) > 0 {
			t.Fatalf("%s: formatted spec does not reparse: %v", name, errs)
		}
	}
}

func TestUsageAccounting(t *testing.T) {
	client := llm.NewSim("gpt-4", 11)
	g := New(client, testCorpus, DefaultOptions())
	g.GenerateFor(ctx, testCorpus.Handler("dm"))
	u := client.Usage()
	if u.Calls == 0 || u.PromptTokens == 0 || u.CompletionTokens == 0 {
		t.Fatalf("usage not accounted: %+v", u)
	}
	if u.CostUSD() <= 0 {
		t.Fatal("cost must be positive")
	}
}

func TestCharDevDeviceDiscovery(t *testing.T) {
	g := gen(t, "gpt-4", 12, DefaultOptions())
	res := g.GenerateFor(ctx, testCorpus.Handler("ptp0"))
	if res.Spec == nil {
		t.Fatal("nil spec")
	}
	text := syzlang.Format(res.Spec)
	if !strings.Contains(text, `"/dev/ptp0"`) {
		t.Fatalf("chardev path not discovered:\n%s", text)
	}
}

func TestTraceRecordsExchanges(t *testing.T) {
	opts := DefaultOptions()
	opts.Trace = true
	g := gen(t, "gpt-4", 13, opts)
	res := g.GenerateFor(ctx, testCorpus.Handler("dm"))
	if len(res.Transcript) == 0 {
		t.Fatal("trace enabled but no exchanges recorded")
	}
	stages := map[string]bool{}
	for _, ex := range res.Transcript {
		stages[ex.Stage] = true
		if ex.Prompt == "" || ex.Completion == "" {
			t.Fatalf("empty exchange in stage %s", ex.Stage)
		}
	}
	for _, want := range []string{"identifier", "type", "dependency"} {
		if !stages[want] {
			t.Fatalf("stage %s missing from transcript: %v", want, stages)
		}
	}
	// Trace off: no transcript.
	g2 := gen(t, "gpt-4", 13, DefaultOptions())
	if res2 := g2.GenerateFor(ctx, testCorpus.Handler("dm")); len(res2.Transcript) != 0 {
		t.Fatal("transcript recorded without Trace")
	}
}
