// Package core implements KernelGPT itself (§3): LLM-guided iterative
// analysis over extracted kernel source (Algorithm 1), staged as
// identifier deduction, type recovery, and dependency analysis, then
// specification assembly, validation with Syzkaller-equivalent
// tooling, and LLM-driven repair from the validator's error messages.
package core

import (
	"fmt"
	"strings"

	"kernelgpt/internal/ccode"
	"kernelgpt/internal/llm"
)

// Prompt instructions per stage. The stage keyword is the routing
// contract with the analysis model (the few-shot examples of the
// paper's template are summarized by the instruction text).
const (
	instrIdent = `Please analyze the following kernel operation handler source code and
generate the Syzkaller specification identifier values: the device file
path (or socket family), each ioctl command or socket option macro, its
worker handler function, and the argument type. If the command handling
is unclear and dependent on another function, list it in the UNKNOWN
section with its usage.`

	instrType = `Please generate the Syzkaller type definitions for the requested
structures based on the source code, capturing length relations between
count fields and sibling arrays, value ranges enforced by validation
code or documented in comments, and output fields. If a nested type is
not shown, list it in the UNKNOWN section.`

	instrDep = `Please perform dependency analysis: identify whether any worker
function's return value creates a new file descriptor resource (for
example via anon_inode_getfd) that other operation handlers consume.`

	instrRepair = `The following Syzkaller specification failed validation. Please repair
the descriptions using the error messages and the original source code,
and output the corrected specification.`
)

// fewShot reproduces the paper's in-context examples (Figure 6): a
// worked identifier deduction, a type recovery, and a repair, shaping
// the model's output format. It is sent with every prompt and counts
// toward the token accounting.
const fewShot = `### Example 1: identifier deduction with delegation
Given the handler:
    static long ex_ctl_ioctl(struct file *file, uint command, ulong u)
    {
        return ctl_ioctl(file, command, (struct ex_ioctl __user *)u);
    }
the command handling is delegated, so answer:
    ## Unknown
    - FUNC: ctl_ioctl USAGE: return ctl_ioctl(file, command, (struct ex_ioctl __user *)u);

### Example 2: identifier deduction with a modified identifier
Given:
    #define EX_IOC_MAGIC 0xfd
    #define EX_VERSION_CMD 0
    #define EX_VERSION _IOWR(EX_IOC_MAGIC, EX_VERSION_CMD, struct ex_ioctl)
    static int ctl_ioctl(struct file *file, uint command, struct ex_ioctl *u)
    {
        uint cmd = _IOC_NR(command);
        if (cmd == EX_VERSION_CMD)
            return ex_version(u);
        ...
    }
the switch variable is the _IOC_NR of the userspace value, so the real
identifier is the full encoded macro:
    ## Commands
    - MACRO: EX_VERSION HANDLER: ex_version ARG: ex_ioctl DIR: inout PLAIN: false

### Example 3: type recovery with a length relation
Given:
    struct ex_list {
        __u32 count;    /* number of entries in entries */
        __u64 entries[];
    };
answer:
    ## Type Definitions
    ex_list {
        count  len[entries, int32]
        entries  array[int64]
    }

### Example 4: repair
Given the error 'unknown constant "EX_VERSIO" in const[]' and the
source macro EX_VERSION, correct the name and output the whole
specification under '## Repaired Specification'.`

// promptBuilder assembles the structured prompts.
type promptBuilder struct {
	ix *ccode.Index
}

func (p *promptBuilder) build(instr string, unknowns []llm.UnknownRef, source string) []llm.Message {
	var b strings.Builder
	b.WriteString(llm.SecInstruction + "\n")
	b.WriteString(instr + "\n\n")
	if len(unknowns) > 0 {
		b.WriteString(llm.SecUnknown + "\n")
		for _, u := range unknowns {
			fmt.Fprintf(&b, "- %s: %s USAGE: %s\n", u.Kind, u.Name, u.Usage)
		}
		b.WriteByte('\n')
	}
	b.WriteString(llm.SecSource + "\n")
	b.WriteString(source + "\n\n")
	b.WriteString(llm.SecFewShot + "\n")
	b.WriteString(fewShot + "\n")
	return []llm.Message{
		{Role: "system", Content: "You are an expert Linux kernel and Syzkaller engineer."},
		{Role: "user", Content: b.String()},
	}
}

func (p *promptBuilder) buildRepair(errs, spec, source string) []llm.Message {
	var b strings.Builder
	b.WriteString(llm.SecInstruction + "\n")
	b.WriteString(instrRepair + "\n\n")
	b.WriteString(llm.SecErrors + "\n")
	b.WriteString(errs + "\n\n")
	b.WriteString(llm.SecSpec + "\n")
	b.WriteString(spec + "\n\n")
	b.WriteString(llm.SecSource + "\n")
	b.WriteString(source + "\n")
	return []llm.Message{
		{Role: "system", Content: "You are an expert Linux kernel and Syzkaller engineer."},
		{Role: "user", Content: b.String()},
	}
}

// definesOf returns every preprocessor definition line of a source
// file — the uapi-header context that accompanies any handler
// analysis.
func definesOf(src string) string {
	var b strings.Builder
	for _, ln := range strings.Split(src, "\n") {
		if strings.HasPrefix(strings.TrimSpace(ln), "#define") {
			b.WriteString(ln)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// snippetFor extracts the definition of an identifier plus, for
// functions, any static dispatch table in the same file that the
// function references (lookup_ioctl's table travels with it).
func (p *promptBuilder) snippetFor(fileSrc, ident string) (string, bool) {
	code, ok := p.ix.ExtractCode(ident)
	if !ok {
		return "", false
	}
	if strings.Contains(code, "lookup_ioctl") {
		if tbl := extractTable(fileSrc); tbl != "" {
			code = tbl + "\n\n" + code
		}
	}
	return code, true
}

// extractTable pulls the "_ioctls[] = { ... };" static table text.
func extractTable(src string) string {
	idx := strings.Index(src, "_ioctls[] = {")
	if idx < 0 {
		return ""
	}
	start := strings.LastIndex(src[:idx], "static")
	if start < 0 {
		start = idx
	}
	end := strings.Index(src[idx:], "};")
	if end < 0 {
		return ""
	}
	return src[start : idx+end+2]
}
