module kernelgpt

go 1.21
